"""The tiered query cache: memoize sliced satisfiability queries across checks.

Sits between the solver facades (:class:`repro.smt.solver.Solver`,
:class:`repro.smt.context.SolverContext`) and the CDCL core.  A query —
a list of simplified boolean terms — is partitioned into independent
slices (:mod:`repro.smt.slicing`) and each slice is answered by the
cheapest tier that can:

* **L1 exact** — verdict + model keyed by the slice's sorted term-uid
  tuple.  The dominant hit: sibling paths and composed routes re-ask the
  same slices endlessly.
* **Shortcuts** — an *unsat core* (minimized unsatisfiable subset)
  contained in the query answers UNSAT; a cached SAT entry whose term
  set contains the query answers SAT (its model satisfies every subset);
  and any recently produced model that evaluates the slice to true
  (:mod:`repro.smt.evaluate`) answers SAT — all without touching a
  solver.
* **L3 persistent** — an on-disk store keyed by a *structural*
  fingerprint of the slice (term uids are process-local; the fingerprint
  is a sha256 over per-term structural digests), so a warm
  re-certification answers every solver question the previous run asked
  with zero SAT-core calls.  The store object is duck-typed
  (``load_payload``/``save_payload``); the concrete
  :class:`repro.orchestrator.store.QueryStore` reuses the shared
  ``JsonFileStore`` machinery.

Slices that no tier answers go to the ``solve`` callback the caller
provides (interval quick check + CDCL), and the result — including a
greedily minimized unsat core for UNSAT slices — is installed in every
tier.  ``unknown`` results (conflict-budget exhaustion) are never
cached.

Verdicts compose soundly because slices share no variables: SAT models
union into a model of the whole query, and one UNSAT slice refutes it.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..obs.slowlog import slice_context
from ..obs.stats import StatisticsMixin
from ..obs.trace import tracer
from .interval import QuickCheckResult, quick_check
from .model import Model
from .slicing import Slice, arena_order, partition
from .terms import Term, mk_and

#: Bump when the persisted payload layout changes; a mismatch reads as a miss.
PAYLOAD_VERSION = 1

#: Verdict strings (shared with ``solver.CheckResult`` — kept literal here
#: to avoid an import cycle with the facades that import this module).
SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

#: A per-slice decision procedure: terms -> (status, model-or-None).
SolveFn = Callable[[Sequence[Term]], Tuple[str, Optional[Model]]]

#: Batched-encoding hook: given every slice's term list, return one
#: :data:`SolveFn` per slice.  Callers that build a fresh solver per
#: slice use this to amortize bit-blasting and solver construction over
#: the whole slice set (one arena, per-slice assumption roots).
BatchFn = Callable[[Sequence[Sequence[Term]]], Sequence[SolveFn]]


# -- structural fingerprints ---------------------------------------------------------

_DIGEST_MEMO: Dict[int, str] = {}
_DIGEST_LIMIT = 500_000


def term_digest(term: Term) -> str:
    """A process-independent structural digest of a term, memoized by uid.

    Computed bottom-up over the DAG from (op, sort, value, name, params,
    child digests) — two structurally equal terms digest identically in
    any process, which is what lets the L3 tier outlive term uids.
    """
    cached = _DIGEST_MEMO.get(term.uid)
    if cached is not None:
        return cached
    if len(_DIGEST_MEMO) >= _DIGEST_LIMIT:
        _DIGEST_MEMO.clear()
    stack: List[Tuple[Term, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if node.uid in _DIGEST_MEMO:
            continue
        if expanded or not node.args:
            sort = "B" if node.sort.is_bool() else f"v{node.width}"
            material = "\x1f".join(
                (
                    node.op,
                    sort,
                    repr(node.value),
                    repr(node.name),
                    ",".join(str(p) for p in node.params),
                    ",".join(_DIGEST_MEMO[arg.uid] for arg in node.args),
                )
            )
            _DIGEST_MEMO[node.uid] = hashlib.sha256(material.encode()).hexdigest()
        else:
            stack.append((node, True))
            for arg in node.args:
                if arg.uid not in _DIGEST_MEMO:
                    stack.append((arg, False))
    return _DIGEST_MEMO[term.uid]


def slice_fingerprint(terms: Sequence[Term]) -> str:
    """Order-independent structural digest of a term set (the L3 key)."""
    material = "\x1f".join(sorted(term_digest(term) for term in terms))
    return hashlib.sha256(material.encode()).hexdigest()


# -- the cache -----------------------------------------------------------------------


@dataclass
class QueryCacheStatistics(StatisticsMixin):
    """Per-tier traffic counters for one :class:`QueryCache`."""

    checks: int = 0
    slices: int = 0
    exact_hits: int = 0
    unsat_core_hits: int = 0
    superset_sat_hits: int = 0
    model_reuse_hits: int = 0
    l3_hits: int = 0
    l3_stores: int = 0
    solved: int = 0
    unknown_results: int = 0
    minimization_tests: int = 0

    @property
    def hits(self) -> int:
        """Slice questions answered without invoking the solve callback."""
        return (
            self.exact_hits
            + self.unsat_core_hits
            + self.superset_sat_hits
            + self.model_reuse_hits
            + self.l3_hits
        )


@dataclass
class _Entry:
    """One cached slice verdict."""

    key_set: FrozenSet[int]
    status: str
    model: Optional[Model] = None


def _restrict(model: Optional[Model], variables: FrozenSet[str]) -> Optional[Model]:
    """Project a model onto exactly a slice's variables (sorted, total).

    Restriction is what makes per-slice models *composable*: the global
    SAT assignment binds every variable the solver has ever seen, and two
    slices' global models may disagree outside their own variables.
    Variables the source model leaves unbound are materialized as 0 —
    the same default :meth:`Model.evaluate` applies, so the projected
    model satisfies exactly what the source did.
    """
    if model is None:
        return None
    data = model.as_dict()
    return Model({name: data.get(name, 0) for name in sorted(variables)})


@dataclass
class QueryCache:
    """Multi-tier verdict/model/core cache over sliced queries.

    ``store`` (optional) is the persistent L3 tier.  With
    ``readonly=True`` the store is consulted but never written — newly
    solved entries accumulate in :attr:`new_entries` for the parent
    process to merge on join, which is how forked fleet workers share one
    store without write races.
    """

    store: Optional[object] = None
    readonly: bool = False
    model_pool: int = 32
    minimize_limit: int = 12
    minimize_tests: int = 6
    statistics: QueryCacheStatistics = field(default_factory=QueryCacheStatistics)
    #: (digest, payload) pairs a read-only cache could not persist itself.
    new_entries: List[Tuple[str, dict]] = field(default_factory=list)

    #: L1 size bound; the whole tier is dropped past it (uids are never
    #: reused, so no entry can become wrong — only unreachable).
    L1_LIMIT = 200_000

    def __post_init__(self) -> None:
        self._exact: Dict[Tuple[int, ...], _Entry] = {}
        self._sat_by_uid: Dict[int, List[_Entry]] = {}
        self._cores_by_uid: Dict[int, List[FrozenSet[int]]] = {}
        self._models: Deque[Tuple[Model, FrozenSet[str]]] = deque(maxlen=self.model_pool)

    # -- querying ------------------------------------------------------------------

    def check(
        self,
        terms: Sequence[Term],
        solve: SolveFn,
        make_batch: Optional[BatchFn] = None,
    ) -> Tuple[str, Optional[Model]]:
        """Decide the conjunction of ``terms`` (simplified, interned booleans).

        Returns ``(status, model)``; SAT always comes with a composed
        model.  ``solve`` is invoked once per slice no tier could answer.
        ``make_batch`` (optional) replaces the per-slice ``solve`` with
        callbacks sharing one batched encoding; slices are still decided
        sequentially, so cache-tier traffic and the one-UNSAT-slice
        short-circuit are identical either way.
        """
        self.statistics.checks += 1
        unique: List[Term] = []
        seen: set = set()
        for term in terms:
            if term.is_true() or term.uid in seen:
                continue
            if term.is_false():
                return UNSAT, None
            seen.add(term.uid)
            unique.append(term)
        if not unique:
            return SAT, Model({})
        slices = partition(unique)
        self.statistics.slices += len(slices)
        solvers: Optional[Sequence[SolveFn]] = None
        order = range(len(slices))
        if make_batch is not None and len(slices) > 1:
            solvers = make_batch([query_slice.terms for query_slice in slices])
            # Cheapest slices first: a quick-check or cached UNSAT on a
            # small slice short-circuits before the shared arena is built.
            order = arena_order(slices)
        assignment: Dict[str, object] = {}
        unknown = False
        for index in order:
            query_slice = slices[index]
            status, model = self._check_slice(
                query_slice, solvers[index] if solvers is not None else solve
            )
            if status == UNSAT:
                return UNSAT, None
            if status == UNKNOWN:
                unknown = True
            elif model is not None:
                assignment.update(model.as_dict())
        if unknown:
            return UNKNOWN, None
        return SAT, Model(assignment)  # type: ignore[arg-type]

    # -- per-slice tiers -----------------------------------------------------------

    def _check_slice(self, query_slice: Slice, solve: SolveFn) -> Tuple[str, Optional[Model]]:
        key = query_slice.key
        key_set = frozenset(key)
        trace = tracer()

        entry = self._exact.get(key)
        if entry is not None:
            self.statistics.exact_hits += 1
            if trace.enabled:
                trace.event("qcache.hit", "qcache", tier="exact")
            return entry.status, entry.model

        # A known unsat core contained in the query refutes it.  Cores are
        # indexed under their smallest member, which the query must carry.
        for uid in key:
            for core in self._cores_by_uid.get(uid, ()):
                if core <= key_set:
                    self.statistics.unsat_core_hits += 1
                    if trace.enabled:
                        trace.event("qcache.hit", "qcache", tier="unsat_core")
                    self._install(query_slice, UNSAT, None, core=core)
                    return UNSAT, None

        # A cached SAT term set containing the query satisfies it (every
        # query term was part of the satisfied superset).
        for entry in self._sat_by_uid.get(key[0], ()):
            if key_set <= entry.key_set:
                self.statistics.superset_sat_hits += 1
                if trace.enabled:
                    trace.event("qcache.hit", "qcache", tier="superset_sat")
                model = _restrict(entry.model, query_slice.variables)
                self._install(query_slice, SAT, model)
                return SAT, model

        # Any model that happens to evaluate the slice true is a witness —
        # concrete evaluation is far cheaper than any SAT call.  Newest
        # pool entries first: a fork's parent-path model (just installed)
        # usually still satisfies the child's extended slice.  The two
        # canned probes (all-zeros, all-ones) catch the first-ever
        # appearance of the many one-sided comparisons symbex produces.
        for model in self._candidate_models(query_slice):
            if all(model.satisfies(term) for term in query_slice.terms):
                self.statistics.model_reuse_hits += 1
                if trace.enabled:
                    trace.event("qcache.hit", "qcache", tier="model_reuse")
                restricted = _restrict(model, query_slice.variables)
                self._install(query_slice, SAT, restricted)
                return SAT, restricted

        digest: Optional[str] = None
        if self.store is not None:
            digest = slice_fingerprint(query_slice.terms)
            loaded = self._load_persisted(query_slice, digest)
            if loaded is not None:
                if trace.enabled:
                    trace.event("qcache.hit", "qcache", tier="l3")
                return loaded

        if trace.enabled:
            trace.event("qcache.miss", "qcache", slice_terms=len(query_slice.terms))
        # Park a lazy fingerprint for the slow-solve log: computed only if
        # the solve below actually crosses the threshold.
        with slice_context(lambda: digest or slice_fingerprint(query_slice.terms)):
            status, model = solve(query_slice.terms)
        self.statistics.solved += 1
        if status == UNKNOWN:
            # Budget artifact, not a fact about the slice: never cached.
            self.statistics.unknown_results += 1
            return UNKNOWN, None
        model = _restrict(model, query_slice.variables)
        core: Optional[FrozenSet[int]] = None
        if status == UNSAT:
            core = self._minimize(query_slice)
        self._install(query_slice, status, model, core=core, digest=digest)
        return status, model

    def _candidate_models(self, query_slice: Slice):
        """Witness candidates for a slice, cheapest-to-likeliest first."""
        yield Model({})  # every variable 0/False
        ones: Dict[str, object] = {}
        for term in query_slice.terms:
            for name, var in term.free_variables().items():
                ones[name] = var.sort.mask if var.is_bitvec() else True  # type: ignore[attr-defined]
        yield Model(ones)  # type: ignore[arg-type]
        for model, model_vars in reversed(self._models):
            if model_vars & query_slice.variables:
                yield model

    def _load_persisted(
        self, query_slice: Slice, digest: str
    ) -> Optional[Tuple[str, Optional[Model]]]:
        payload = self.store.load_payload(digest)  # type: ignore[union-attr]
        if not isinstance(payload, dict) or payload.get("v") != PAYLOAD_VERSION:
            return None
        status = payload.get("status")
        if status == SAT:
            model = Model(payload.get("model") or {})
            # Defensive: a fingerprint collision would be a soundness hole,
            # so the (cheap) witness check gates the answer.
            if not all(model.satisfies(term) for term in query_slice.terms):
                return None
            self.statistics.l3_hits += 1
            restricted = _restrict(model, query_slice.variables)
            self._install(query_slice, SAT, restricted, persist=False)
            return SAT, restricted
        if status == UNSAT:
            core_digests = set(payload.get("core") or ())
            by_digest = {term_digest(term): term for term in query_slice.terms}
            core = frozenset(
                by_digest[d].uid for d in core_digests if d in by_digest
            ) or frozenset(term.uid for term in query_slice.terms)
            self.statistics.l3_hits += 1
            self._install(query_slice, UNSAT, None, core=core, persist=False)
            return UNSAT, None
        return None

    # -- installation --------------------------------------------------------------

    def _install(
        self,
        query_slice: Slice,
        status: str,
        model: Optional[Model],
        core: Optional[FrozenSet[int]] = None,
        digest: Optional[str] = None,
        persist: bool = True,
    ) -> None:
        if len(self._exact) >= self.L1_LIMIT:
            self.__post_init__()
        entry = _Entry(frozenset(query_slice.key), status, model)
        if query_slice.key not in self._exact:
            self._exact[query_slice.key] = entry
            if status == SAT:
                for uid in query_slice.key:
                    self._sat_by_uid.setdefault(uid, []).append(entry)
                if model is not None and len(model):
                    self._models.append((model, frozenset(model.as_dict())))
        if core:
            anchor = min(core)
            bucket = self._cores_by_uid.setdefault(anchor, [])
            if core not in bucket:
                bucket.append(core)
        if persist and self.store is not None:
            if digest is None:
                digest = slice_fingerprint(query_slice.terms)
            if self.store.contains(digest):  # type: ignore[attr-defined]
                # Shortcut-tier answers re-derive entries a previous run
                # already persisted; a stat beats a rewrite (and keeps
                # warm runs write-free).
                return
            payload: dict = {"v": PAYLOAD_VERSION, "status": status}
            if status == SAT:
                payload["model"] = dict((model or Model({})).as_dict())
            elif core:
                uid_to_term = {term.uid: term for term in query_slice.terms}
                payload["core"] = sorted(
                    term_digest(uid_to_term[uid]) for uid in core if uid in uid_to_term
                )
            if self.readonly:
                self.new_entries.append((digest, payload))
            else:
                self.store.save_payload(digest, payload)  # type: ignore[union-attr]
            self.statistics.l3_stores += 1

    def _minimize(self, query_slice: Slice) -> FrozenSet[int]:
        """Greedy deletion-based minimization of an UNSAT slice, under a budget.

        Deletion tests use interval reasoning only: a term is dropped
        when the quick check *still proves the remainder UNSAT* — never a
        SAT-core call, so minimization cannot erode the optimization's
        own win.  Conservative (an un-droppable-looking term stays in the
        core), which costs shortcut coverage, never soundness: every
        retained core is a genuine unsatisfiable subset.
        """
        terms = list(query_slice.terms)
        if len(terms) <= 1 or len(terms) > self.minimize_limit:
            return frozenset(term.uid for term in terms)
        tests = 0
        index = 0
        while index < len(terms) and len(terms) > 1 and tests < self.minimize_tests:
            candidate = terms[:index] + terms[index + 1 :]
            goal = candidate[0] if len(candidate) == 1 else mk_and(*candidate)
            tests += 1
            self.statistics.minimization_tests += 1
            if quick_check(goal).status == QuickCheckResult.UNSAT:
                terms = candidate  # the dropped term was not needed
            else:
                index += 1
        return frozenset(term.uid for term in terms)


def build_query_cache(
    enabled: bool, store_dir: Optional[str] = None, readonly: bool = False
) -> Optional[QueryCache]:
    """Construct the query cache an engine/context should route through.

    Returns ``None`` when the optimization is disabled — callers treat
    that as "use the legacy direct-solve path".  ``store_dir`` attaches
    the persistent L3 tier.
    """
    if not enabled:
        return None
    store = None
    if store_dir:
        # Late import: the orchestrator layer sits above smt and imports
        # it; only the concrete on-disk store class lives up there.
        from ..orchestrator.store import QueryStore

        store = QueryStore(store_dir)
    return QueryCache(store=store, readonly=readonly)
