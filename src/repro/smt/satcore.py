"""Flat-array CDCL: the hardware-speed SAT backend.

Algorithmically this is the same solver as :mod:`repro.smt.sat` — conflict
driven clause learning with two-watched-literal propagation, first-UIP
analysis, VSIDS branching, phase saving and Luby restarts — restructured
for CPython throughput:

* **clause arena** — every clause lives in one flat integer list as
  ``[size, lit0, lit1, ...]`` addressed by offset; there are no per-clause
  Python objects and no nested list traversals on the hot path;
* **literal codes** — a literal is encoded as ``2*var`` (positive) or
  ``2*var + 1`` (negative), so negation is ``code ^ 1`` and the assignment
  array is indexed directly by code (no ``abs()``/sign branches per
  lookup);
* **blocker literals** — each watch-list entry carries a cached literal
  whose truth satisfies the clause; most watch visits are a single array
  read instead of a clause dereference.  Binary clauses (the bulk of a
  Tseitin encoding) store a tagged ``~offset`` entry whose blocker *is*
  the rest of the clause, so propagating them never touches the arena;
* **two-tier branch order** — activity only ever grows from zero, so
  branching splits the variables: the few conflict-bumped ones live in a
  C-implemented :mod:`heapq` heap of ``(-activity, var)`` entries with
  lazy deletion (stale entries re-pushed at their current priority, live
  keys deduplicated through ``_onheap``), and the zero-activity rest is
  found by an index cursor that yields exactly the heap's tie-break
  order with no heap traffic at all.  A complete assignment is detected
  from the trail length, never by draining the heap, so surviving
  entries carry over to the next solve;
* **O(1) assumption placement** — each assumption owns one decision
  level (satisfied assumptions hold an empty level), so the solve loop
  places ``assumptions[decision_level]`` directly instead of rescanning
  the assumption list after every propagation;
* **assumption-trail caching** — consecutive solves over a shared
  assumption prefix (the incremental context's normal traffic) keep the
  prefix's decision levels, and all their propagations, on the trail
  instead of replaying them from level 0; clause feeds are trail-safe
  (``trail_safe_feed``) and only unwind as far as a new clause forces;
* **bulk clause loading** — :meth:`add_clause_stream` ingests a flat,
  0-terminated DIMACS-style literal buffer (produced incrementally by
  :class:`repro.smt.cnf.CNFBuilder`) in one tight loop;
* **bounded learned-clause database** — activity-scored clause-database
  reduction (binary and locked clauses are kept) caps memory growth on
  long incremental sessions, with arena compaction reclaiming the space.

``numpy`` is used only where it wins (model extraction); the search loops
are pure Python by design — per-element ufunc dispatch would be slower
than the inlined loops below.

The public surface mirrors :class:`repro.smt.sat.SATSolver` (DIMACS
integer literals in, tri-state :class:`~repro.smt.sat.SatResult` out), so
the two cores are interchangeable behind
:func:`repro.smt.backend.make_sat_solver` and differentially testable.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Iterable, List, Optional, Sequence, Tuple

from ..obs.slowlog import sat_observer
from .sat import RESTART_BASE, SatResult, luby

try:  # numpy accelerates model extraction only; the solver runs without it.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the toolchain image
    _np = None

#: Learned clauses retained before a reduction sweep (override per solver).
DEFAULT_MAX_LEARNED = 20_000


class ArraySolver:
    """CDCL over a flat clause arena (DIMACS literal conventions)."""

    #: Clauses may be added while a trail is up (no :meth:`cancel` needed
    #: between solves); incremental feeders check this before cancelling.
    trail_safe_feed = True

    def __init__(self, num_vars: int = 0, max_learned: Optional[int] = DEFAULT_MAX_LEARNED) -> None:
        self._num_vars = 0
        # Assignment indexed by literal code: 1 true, 0 false, -1 unassigned.
        # Codes 0/1 belong to the nonexistent variable 0 and stay -1.
        self._val: List[int] = [-1, -1]
        # Per-variable parallel arrays (index 0 unused).
        self._level: List[int] = [0]
        self._reason: List[int] = [-1]  # arena offset of the implying clause, -1 for decisions
        self._act: List[float] = [0.0]
        self._phase: List[int] = [1]  # saved sign bit; 1 = branch negative first
        # Watch lists indexed by the code that falsifies the watched literal;
        # entries are flat (blocker, clause offset) pairs.
        self._watches: List[List[int]] = [[], []]
        # Branch order is two-tier.  Activity only ever grows from 0.0
        # (bumps add, rescale scales positives to positives), so the
        # variable set splits into the few conflict-bumped vars and the
        # zero-activity rest:
        #   * ``_order`` — lazy max-heap of (-activity, var) entries for
        #     act > 0 vars only; stale entries dropped or re-keyed on pop.
        #   * ``_zero_cursor`` — index scan for act == 0 vars.  Heap
        #     order breaks activity ties by index, so the cursor yields
        #     exactly the order the heap would — without paying a heap
        #     operation per propagation-assigned variable.
        self._order: List[Tuple[float, int]] = []
        self._zero_cursor = 1
        # Key of the variable's live heap entry (-1.0 when it has none):
        # ``_onheap[var] == _act[var]`` means an entry at the current
        # priority is already enqueued, so a push would be a duplicate.
        # Popping a tracked key clears the slot.  The guarantee is
        # one-sided — extra entries are harmless, missing ones are not —
        # so clears may be conservative but skips never are.
        self._onheap: List[float] = [-1.0]
        # Bumped variables unassigned by backtracking but not yet
        # re-enqueued: they are only pushed when branching actually needs
        # the heap, so vars reassigned by propagation first never touch it.
        self._pending: List[int] = []
        # The arena: clause = size at offset, literal codes inline after it.
        self._arena: List[int] = []
        self._n_problem_clauses = 0
        self._learned_offsets: List[int] = []
        self._learned_act: dict = {}  # arena offset -> clause activity
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._head = 0
        # Assumption codes placed by the previous solve whose decision
        # levels are still on the trail (one level per assumption).  A
        # repeat solve sharing a prefix keeps those levels — and their
        # propagations — instead of rebuilding the trail from level 0.
        self._kept_assumptions: List[int] = []
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._ok = True
        self.max_learned = max_learned
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.db_reductions = 0
        # Incremental-reuse accounting: decision levels kept across
        # consecutive assumption solves (the trail cache at work), and
        # solves answered outright by the previous complete assignment.
        self.trail_reused_levels = 0
        self.model_reuses = 0
        self._ensure_vars(num_vars)

    # -- public API -------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def learned_clause_count(self) -> int:
        """Learned clauses currently retained (bounded by ``max_learned``)."""
        return len(self._learned_offsets)

    def reserve(self, num_vars: int) -> None:
        """Grow the variable tables to ``num_vars``."""
        self._ensure_vars(num_vars)

    def add_clause(self, literals: Sequence[int]) -> bool:
        """Add a clause of DIMACS literals.

        Returns False if the formula became trivially unsatisfiable.
        Root-level-decided literals are simplified away.  Unlike the
        reference core, no :meth:`cancel` is required on a solver that
        has already run (``trail_safe_feed``) — the live trail is kept
        and only unwound as far as the new clause forces.
        """
        if not self._ok:
            return False
        val = self._val
        seen: set = set()
        clause: List[int] = []
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            var = lit if lit > 0 else -lit
            if var > self._num_vars:
                self._ensure_vars(var)
            code = var + var if lit > 0 else var + var + 1
            value = val[code]
            if value >= 0 and self._level[var] == 0:
                if value == 1:
                    return True  # satisfied at the root forever
                continue  # permanently false literal: drop it
            if code ^ 1 in seen:
                return True  # tautology
            if code in seen:
                continue
            seen.add(code)
            clause.append(code)
        return self._commit_clause(clause)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def add_clause_stream(self, literals: Sequence[int], start: int = 0,
                          end: Optional[int] = None) -> bool:
        """Bulk-add 0-terminated clauses from a flat literal buffer.

        ``literals[start:end]`` is a DIMACS-style stream: clause literals
        followed by a ``0`` terminator, repeated.  One pass, no per-clause
        Python list churn beyond the survivors — this is how the
        incremental context feeds newly generated Tseitin clauses.
        Returns False once the formula is trivially unsatisfiable.
        """
        if end is None:
            end = len(literals)
        val = self._val
        level = self._level
        clause: List[int] = []
        satisfied = False
        taut_or_dup = False
        position = start
        while position < end:
            lit = literals[position]
            position += 1
            if lit == 0:
                if not satisfied:
                    if taut_or_dup or len(clause) > 3:
                        # Rare slow path: re-check with full dedup rules.
                        seen: set = set()
                        deduped: List[int] = []
                        tautology = False
                        for code in clause:
                            if code ^ 1 in seen:
                                tautology = True
                                break
                            if code not in seen:
                                seen.add(code)
                                deduped.append(code)
                        if not tautology and not self._commit_clause(deduped):
                            return False
                    elif not self._commit_clause(clause):
                        return False
                clause = []
                satisfied = False
                taut_or_dup = False
                continue
            if satisfied or not self._ok:
                continue
            var = lit if lit > 0 else -lit
            if var > self._num_vars:
                self._ensure_vars(var)
            code = var + var if lit > 0 else var + var + 1
            value = val[code]
            if value >= 0 and level[var] == 0:
                if value == 1:
                    satisfied = True
                else:
                    continue  # permanently false: drop
            else:
                if code in clause or code ^ 1 in clause:
                    taut_or_dup = True
                clause.append(code)
        return self._ok

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> str:
        """Solve under ``assumptions`` (DIMACS literals) and a conflict budget.

        Same contract as the reference core: ``UNKNOWN`` only on budget
        exhaustion; the budget covers this call only.
        """
        observer = sat_observer("array")
        if observer is None:
            return self._solve(assumptions, max_conflicts)
        conflicts = self.conflicts
        decisions = self.decisions
        restarts = self.restarts
        result = self._solve(assumptions, max_conflicts)
        observer.finish(
            result,
            self.conflicts - conflicts,
            self.decisions - decisions,
            self.restarts - restarts,
            assumptions=len(assumptions),
        )
        return result

    def _solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> str:
        if not self._ok:
            return SatResult.UNSAT
        assumption_codes = [
            (lit + lit) if lit > 0 else (-lit - lit + 1) for lit in assumptions
        ]
        for code in assumption_codes:
            if (code >> 1) > self._num_vars:
                self._ensure_vars(code >> 1)
        num_assumptions = len(assumption_codes)

        # Model reuse: if the previous solve left a complete assignment on
        # the trail (a propagation fixpoint over all variables with no
        # conflict is a model by the watch invariant) and every current
        # assumption is already true under it, it satisfies this query
        # too — answer without disturbing the trail.
        kept = self._kept_assumptions
        val = self._val
        if kept and self._head == len(self._trail) == self._num_vars:
            for code in assumption_codes:
                if val[code] != 1:
                    break
            else:
                self.model_reuses += 1
                return SatResult.SAT

        # Trail caching: incremental callers issue runs of solves over a
        # shared assumption prefix (trail-safe feeds only unwind what a
        # new clause forces).  The decision levels of the
        # longest prefix shared with the previous solve are still on the
        # trail — keep them, and their propagations, instead of replaying
        # from level 0.  Sound because backtracking preserves the watch
        # invariant (a false watch has a true co-watch at or below its
        # level), so propagation under the kept prefix is already complete.
        keep = 0
        limit = min(len(kept), num_assumptions, len(self._trail_lim))
        while keep < limit and kept[keep] == assumption_codes[keep]:
            keep += 1
        self.trail_reused_levels += keep
        self._backtrack(keep)
        self._kept_assumptions = []

        restart_number = 1
        restart_limit = RESTART_BASE * luby(restart_number)
        conflicts_since_restart = 0
        conflict_budget = None if max_conflicts is None else self.conflicts + max_conflicts
        val = self._val
        trail = self._trail
        trail_lim = self._trail_lim
        level = self._level
        reason = self._reason
        act = self._act
        phase = self._phase
        pending = self._pending

        while True:
            conflict = self._propagate()
            if conflict >= 0:
                self.conflicts += 1
                conflicts_since_restart += 1
                if not self._trail_lim:
                    self._ok = False
                    return SatResult.UNSAT
                learned, backjump_level = self._analyze(conflict)
                self._backtrack(backjump_level)
                self._record_learned(learned)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay
                if conflict_budget is not None and self.conflicts >= conflict_budget:
                    self._backtrack(0)
                    return SatResult.UNKNOWN
                overfull = (
                    self.max_learned is not None
                    and len(self._learned_offsets) >= self.max_learned
                )
                if conflicts_since_restart >= restart_limit or overfull:
                    conflicts_since_restart = 0
                    restart_number += 1
                    restart_limit = RESTART_BASE * luby(restart_number)
                    self.restarts += 1
                    self._backtrack(0)
                    if overfull:
                        self._reduce_db()
                continue

            # Assumption ``i`` owns decision level ``i + 1`` (an empty
            # level when it is already implied), so placement after any
            # backjump is an O(1) index instead of a rescan.
            decision_level = len(trail_lim)
            if decision_level < num_assumptions:
                code = assumption_codes[decision_level]
                value = val[code]
                if value == 1:
                    trail_lim.append(len(trail))
                    continue
                if value == 0:
                    # Keep the consistent prefix below the failed
                    # assumption for the next solve to reuse.
                    self._kept_assumptions = assumption_codes[:decision_level]
                    return SatResult.UNSAT
            else:
                # All variables assigned at a conflict-free fixpoint is a
                # model.  Detect it from the trail length instead of by
                # draining the heap: the surviving entries spare the next
                # solve from re-enqueueing the whole variable set.
                if len(trail) == self._num_vars:
                    self._kept_assumptions = assumption_codes
                    return SatResult.SAT
                # Inline :meth:`_pick_branch` (the per-decision method
                # call is measurable at this call count): flush the
                # pending unwinds, pop the most active bumped variable,
                # fall back to the zero-activity cursor.
                order = self._order
                onheap = self._onheap
                if pending:
                    for var in pending:
                        if val[var + var] < 0 and onheap[var] != act[var]:
                            heappush(order, (-act[var], var))
                            onheap[var] = act[var]
                    del pending[:]
                    if len(order) > 2 * self._num_vars + 64:
                        self._rebuild_order()
                        order = self._order
                        onheap = self._onheap
                code = -1
                while order:
                    key, var = heappop(order)
                    if -key == onheap[var]:
                        onheap[var] = -1.0
                    if val[var + var] >= 0:
                        continue
                    activity = act[var]
                    if -key != activity:
                        if onheap[var] != activity:
                            heappush(order, (-activity, var))
                            onheap[var] = activity
                        continue
                    code = var + var + phase[var]
                    break
                if code < 0:
                    num_vars = self._num_vars
                    cursor = self._zero_cursor
                    while cursor <= num_vars and val[cursor + cursor] >= 0:
                        cursor += 1
                    self._zero_cursor = cursor
                    if cursor > num_vars:  # pragma: no cover - guarded above
                        raise RuntimeError(
                            "branch lookup found no unassigned variable "
                            "below a complete trail"
                        )
                    code = cursor + cursor + phase[cursor]
            # Inline :meth:`_assign` for the new decision level.
            self.decisions += 1
            trail_lim.append(len(trail))
            val[code] = 1
            val[code ^ 1] = 0
            var = code >> 1
            level[var] = len(trail_lim)
            reason[var] = -1
            phase[var] = code & 1
            trail.append(code)

    def model(self) -> List[bool]:
        """The satisfying assignment as a list indexed by variable (index 0 unused)."""
        if _np is not None and self._num_vars >= 64:
            values = _np.asarray(self._val[2:], dtype=_np.int64)
            return [False] + (values[0::2] == 1).tolist()
        val = self._val
        return [False] + [val[code] == 1 for code in range(2, 2 * self._num_vars + 2, 2)]

    def value(self, var: int) -> bool:
        """Truth value of a variable in the current model (False if unassigned)."""
        return self._val[var + var] == 1

    def cancel(self) -> None:
        """Undo all decisions and assumptions, keeping clauses and heuristics."""
        self._kept_assumptions = []
        self._backtrack(0)

    # -- variable tables ----------------------------------------------------------------

    def _ensure_vars(self, count: int) -> None:
        grow = count - self._num_vars
        if grow <= 0:
            return
        self._val.extend([-1] * (2 * grow))
        self._level.extend([0] * grow)
        self._reason.extend([-1] * grow)
        self._act.extend([0.0] * grow)
        self._phase.extend([1] * grow)
        for _ in range(2 * grow):
            self._watches.append([])
        # New variables start at zero activity: the cursor finds them
        # (it can never have advanced past ``count + 1``), no heap entry.
        self._onheap.extend([-1.0] * grow)
        self._num_vars = count

    # -- assignment ---------------------------------------------------------------------

    def _assign(self, code: int, reason: int) -> None:
        """Make the literal ``code`` true with ``reason`` (-1 for decisions)."""
        val = self._val
        val[code] = 1
        val[code ^ 1] = 0
        var = code >> 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = code & 1
        self._trail.append(code)

    def _commit_clause(self, clause: List[int]) -> bool:
        """Install a root-simplified clause of literal codes.

        Trail-safe: may be called while assumption/decision levels are on
        the trail (see ``trail_safe_feed``).  The clause is committed with
        a non-false first watch so its future falsification is always
        observed; a clause arriving fully falsified first backtracks to
        the level that frees its highest literal.  Implications the new
        clause would produce under the current trail are discovered lazily
        (through later watch events or conflicts) — that costs search
        effort, never soundness.
        """
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            # Unit facts live only in the assignment (never the arena), so
            # they must be placed at level 0 to survive backtracking.
            if self._trail_lim:
                self._kept_assumptions = []
                self._backtrack(0)
            code = clause[0]
            value = self._val[code]
            if value == 0:
                self._ok = False
                return False
            if value < 0:
                self._assign(code, -1)
            return True
        val = self._val
        if val[clause[0]] == 0 or val[clause[1]] == 0:
            non_false = []
            for position, code in enumerate(clause):
                if val[code] != 0:
                    non_false.append(position)
                    if len(non_false) == 2:
                        break
            if not non_false:
                # Fully falsified under the trail: free the most recent
                # literal (its level is >= 1, root-false literals were
                # already simplified away) and keep the rest.
                level = self._level
                highest = max(level[code >> 1] for code in clause)
                self._backtrack(highest - 1)
                kept = self._kept_assumptions
                if len(kept) > highest - 1:
                    del kept[highest - 1:]
                for position, code in enumerate(clause):
                    if val[code] != 0:
                        non_false.append(position)
                        if len(non_false) == 2:
                            break
            first = non_false[0]
            second = non_false[1] if len(non_false) > 1 else None
            if first != 0:
                clause[0], clause[first] = clause[first], clause[0]
                if second == 0:
                    second = first
            if second is not None and second != 1:
                clause[1], clause[second] = clause[second], clause[1]
        arena = self._arena
        offset = len(arena)
        arena.append(len(clause))
        arena.extend(clause)
        self._n_problem_clauses += 1
        # Binary clauses get a tagged (~offset) watch entry: the blocker
        # is the whole rest of the clause, so propagation never has to
        # touch the arena for them.
        stored = ~offset if len(clause) == 2 else offset
        self._watches[clause[0] ^ 1].append(clause[1])
        self._watches[clause[0] ^ 1].append(stored)
        self._watches[clause[1] ^ 1].append(clause[0])
        self._watches[clause[1] ^ 1].append(stored)
        return True

    # -- propagation (the hot loop) -----------------------------------------------------

    def _propagate(self) -> int:
        """Unit propagation; returns the conflicting clause's offset, or -1."""
        val = self._val
        arena = self._arena
        watches = self._watches
        trail = self._trail
        level = self._level
        reason = self._reason
        phase = self._phase
        trail_lim_len = len(self._trail_lim)
        start = head = self._head
        trail_len = len(trail)
        while head < trail_len:
            p = trail[head]
            head += 1
            false_lit = p ^ 1
            wl = watches[p]
            i = 0
            n = len(wl)
            # Phase 1: no watch relocated yet, so every entry stays where
            # it is — scan without any compaction stores (the common
            # case; a visit usually ends at the blocker or a unit).
            relocated = False
            while i < n:
                blocker = wl[i]
                blocker_val = val[blocker]
                if blocker_val == 1:
                    i += 2
                    continue
                offset = wl[i + 1]
                if offset < 0:
                    # Tagged binary clause: the blocker is the whole rest
                    # of the clause — unit or conflicting right here, no
                    # arena access.
                    if blocker_val == 0:
                        self._head = trail_len
                        self.propagations += head - start
                        return ~offset
                    val[blocker] = 1
                    val[blocker ^ 1] = 0
                    var = blocker >> 1
                    level[var] = trail_lim_len
                    reason[var] = ~offset
                    phase[var] = blocker & 1
                    trail.append(blocker)
                    trail_len += 1
                    i += 2
                    continue
                # Normalise so the falsified watch sits at offset+2.
                first = arena[offset + 1]
                if first == false_lit:
                    first = arena[offset + 2]
                    arena[offset + 1] = first
                    arena[offset + 2] = false_lit
                first_val = val[first]
                if first_val == 1:
                    wl[i] = first  # refresh the blocker in place
                    i += 2
                    continue
                # Look for a replacement watch.
                k = offset + 3
                stop = offset + 1 + arena[offset]
                while k < stop:
                    q = arena[k]
                    if val[q] != 0:
                        arena[offset + 2] = q
                        arena[k] = false_lit
                        other = watches[q ^ 1]
                        other.append(first)
                        other.append(offset)
                        break
                    k += 1
                else:
                    # Clause is unit or conflicting on `first`.
                    wl[i] = first
                    if first_val == 0:
                        self._head = trail_len
                        self.propagations += head - start
                        return offset
                    val[first] = 1
                    val[first ^ 1] = 0
                    var = first >> 1
                    level[var] = trail_lim_len
                    reason[var] = offset
                    phase[var] = first & 1
                    trail.append(first)
                    trail_len += 1
                    i += 2
                    continue
                # This entry moved to another list: start compacting.
                relocated = True
                j = i
                i += 2
                break
            if not relocated:
                continue
            # Phase 2: same walk with the compaction shift (j < i).
            while i < n:
                blocker = wl[i]
                blocker_val = val[blocker]
                if blocker_val == 1:
                    wl[j] = blocker
                    wl[j + 1] = wl[i + 1]
                    j += 2
                    i += 2
                    continue
                offset = wl[i + 1]
                i += 2
                if offset < 0:
                    wl[j] = blocker
                    wl[j + 1] = offset
                    j += 2
                    if blocker_val == 0:
                        while i < n:  # keep the unvisited tail
                            wl[j] = wl[i]
                            wl[j + 1] = wl[i + 1]
                            j += 2
                            i += 2
                        del wl[j:]
                        self._head = trail_len
                        self.propagations += head - start
                        return ~offset
                    val[blocker] = 1
                    val[blocker ^ 1] = 0
                    var = blocker >> 1
                    level[var] = trail_lim_len
                    reason[var] = ~offset
                    phase[var] = blocker & 1
                    trail.append(blocker)
                    trail_len += 1
                    continue
                first = arena[offset + 1]
                if first == false_lit:
                    first = arena[offset + 2]
                    arena[offset + 1] = first
                    arena[offset + 2] = false_lit
                first_val = val[first]
                if first_val == 1:
                    wl[j] = first
                    wl[j + 1] = offset
                    j += 2
                    continue
                k = offset + 3
                stop = offset + 1 + arena[offset]
                while k < stop:
                    q = arena[k]
                    if val[q] != 0:
                        arena[offset + 2] = q
                        arena[k] = false_lit
                        other = watches[q ^ 1]
                        other.append(first)
                        other.append(offset)
                        break
                    k += 1
                else:
                    # Clause is unit or conflicting on `first`.
                    wl[j] = first
                    wl[j + 1] = offset
                    j += 2
                    if first_val == 0:
                        while i < n:  # keep the unvisited tail
                            wl[j] = wl[i]
                            wl[j + 1] = wl[i + 1]
                            j += 2
                            i += 2
                        del wl[j:]
                        self._head = trail_len
                        self.propagations += head - start
                        return offset
                    val[first] = 1
                    val[first ^ 1] = 0
                    var = first >> 1
                    level[var] = trail_lim_len
                    reason[var] = offset
                    phase[var] = first & 1
                    trail.append(first)
                    trail_len += 1
            del wl[j:]
        self._head = head
        self.propagations += head - start
        return -1

    # -- conflict analysis --------------------------------------------------------------

    def _analyze(self, conflict: int) -> tuple:
        """First-UIP analysis; returns (learned clause codes, backjump level)."""
        arena = self._arena
        level = self._level
        reason = self._reason
        trail = self._trail
        learned_act = self._learned_act
        cla_inc = self._cla_inc
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = bytearray(self._num_vars + 1)
        counter = 0
        p = -1  # code of the literal being resolved on (-1 on the first pass)
        offset = conflict
        index = len(trail) - 1
        current_level = len(self._trail_lim)

        while True:
            if offset in learned_act:
                learned_act[offset] += cla_inc
            base = offset + 1
            for k in range(base, base + arena[offset]):
                q = arena[k]
                if q == p:
                    continue
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    self._bump_activity(var)
                    if level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            var = p >> 1
            seen[var] = 0
            counter -= 1
            index -= 1
            if counter == 0:
                learned[0] = p ^ 1
                break
            offset = reason[var]

        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the learned clause and move
        # one of its literals into the first watch position.
        backjump_level = 0
        swap_position = 1
        for position in range(1, len(learned)):
            lit_level = level[learned[position] >> 1]
            if lit_level > backjump_level:
                backjump_level = lit_level
                swap_position = position
        learned[1], learned[swap_position] = learned[swap_position], learned[1]
        return learned, backjump_level

    def _record_learned(self, learned: List[int]) -> None:
        if len(learned) == 1:
            self._assign(learned[0], -1)
            return
        arena = self._arena
        offset = len(arena)
        arena.append(len(learned))
        arena.extend(learned)
        self._learned_offsets.append(offset)
        self._learned_act[offset] = self._cla_inc
        stored = ~offset if len(learned) == 2 else offset
        self._watches[learned[0] ^ 1].append(learned[1])
        self._watches[learned[0] ^ 1].append(stored)
        self._watches[learned[1] ^ 1].append(learned[0])
        self._watches[learned[1] ^ 1].append(stored)
        self._assign(learned[0], offset)

    def _backtrack(self, target_level: int) -> None:
        trail_lim = self._trail_lim
        if len(trail_lim) <= target_level:
            return
        val = self._val
        reason = self._reason
        act = self._act
        trail = self._trail
        pending = self._pending
        cursor = self._zero_cursor
        boundary = trail_lim[target_level]
        for position in range(len(trail) - 1, boundary - 1, -1):
            code = trail[position]
            val[code] = -1
            val[code ^ 1] = -1
            var = code >> 1
            reason[var] = -1
            if act[var] != 0.0:
                pending.append(var)
            elif var < cursor:
                cursor = var
        self._zero_cursor = cursor
        del trail[boundary:]
        del trail_lim[target_level:]
        # Only lower: a trail-safe feed may have appended assignments that
        # are not yet propagated — never skip past them.
        if self._head > boundary:
            self._head = boundary

    # -- branching (lazy VSIDS max-heap) ------------------------------------------------

    def _pick_branch(self) -> int:
        """Pop the most active unassigned variable; -1 when all are assigned.

        The solve loop carries an inlined copy of this method (one call
        per decision is measurable); this is the readable reference.

        Bumped (act > 0) variables live in the ``(-activity, var)`` heap;
        an entry pushed before the variable's last bump is stale and is
        re-pushed at its current priority (activity only grows between
        rescales, so the fresh entry can only sink, never unfairly win).
        Zero-activity variables are found by the index cursor instead —
        the same order the heap's index tie-break would give them, with
        no per-variable heap traffic.

        Bumped variables unassigned by backtracking sit in ``_pending``
        until a branch decision actually needs the heap; the many that
        get reassigned by propagation first are dropped here for free.
        """
        if len(self._trail) == self._num_vars:
            return -1  # complete assignment; keep the heap's entries alive
        val = self._val
        act = self._act
        order = self._order
        onheap = self._onheap
        pending = self._pending
        if pending:
            for var in pending:
                if val[var + var] < 0 and onheap[var] != act[var]:
                    heappush(order, (-act[var], var))
                    onheap[var] = act[var]
            del pending[:]
            if len(order) > 2 * self._num_vars + 64:
                self._rebuild_order()
                order = self._order
                onheap = self._onheap
        while order:
            key, var = heappop(order)
            if -key == onheap[var]:
                onheap[var] = -1.0
            if val[var + var] >= 0:
                continue  # assigned; re-enqueued by the unwinding backtrack
            activity = act[var]
            if -key != activity:
                if onheap[var] != activity:
                    heappush(order, (-activity, var))
                    onheap[var] = activity
                continue
            return var + var + self._phase[var]
        num_vars = self._num_vars
        cursor = self._zero_cursor
        while cursor <= num_vars and val[cursor + cursor] >= 0:
            cursor += 1
        self._zero_cursor = cursor
        if cursor > num_vars:  # pragma: no cover - complete-trail check above
            raise RuntimeError(
                "branch lookup found no unassigned variable below a complete trail"
            )
        return cursor + cursor + self._phase[cursor]

    def _rebuild_order(self) -> None:
        """Compact the heap to one fresh entry per unassigned bumped variable."""
        val = self._val
        act = self._act
        del self._pending[:]  # every unassigned bumped var gets a fresh entry below
        onheap = [-1.0] * (self._num_vars + 1)
        order = []
        for var in range(1, self._num_vars + 1):
            if val[var + var] < 0 and act[var] != 0.0:
                order.append((-act[var], var))
                onheap[var] = act[var]
        heapify(order)
        self._order = order
        self._onheap = onheap
        self._zero_cursor = 1  # re-derive lazily; only moves past assigned vars

    def _bump_activity(self, var: int) -> None:
        act = self._act
        act[var] += self._var_inc
        if act[var] > 1e100:
            for index in range(1, self._num_vars + 1):
                act[index] *= 1e-100
            self._var_inc *= 1e-100
            # Every heap key is now stale in the wrong direction; rebuild.
            self._rebuild_order()

    # -- learned-clause database reduction ----------------------------------------------

    def _reduce_db(self) -> None:
        """Drop low-activity learned clauses and compact the arena.

        Runs at decision level 0 only (the solve loop reduces after a
        restart backtrack), so the watch positions copied verbatim remain
        valid: the two-watched invariant held before compaction under the
        same root assignment.  Binary clauses and clauses locked as the
        reason of a root assignment are always kept.
        """
        arena = self._arena
        learned_act = self._learned_act
        locked = {self._reason[code >> 1] for code in self._trail}
        candidates = [
            offset for offset in self._learned_offsets
            if arena[offset] > 2 and offset not in locked
        ]
        keep_forever = [
            offset for offset in self._learned_offsets
            if arena[offset] <= 2 or offset in locked
        ]
        candidates.sort(key=learned_act.__getitem__, reverse=True)
        retained = set(keep_forever)
        retained.update(candidates[: max(len(candidates) // 2, 0)])

        new_arena: List[int] = []
        remap: dict = {}
        position = 0
        end = len(arena)
        new_learned: List[int] = []
        new_act: dict = {}
        # Classify by offset, not arena order: incremental feeding appends
        # new problem clauses *after* previously learned ones.
        learned_set = set(self._learned_offsets)
        while position < end:
            size = arena[position]
            is_learned = position in learned_set
            if not is_learned or position in retained:
                new_offset = len(new_arena)
                remap[position] = new_offset
                new_arena.extend(arena[position: position + size + 1])
                if is_learned:
                    new_learned.append(new_offset)
                    new_act[new_offset] = learned_act[position]
            position += size + 1

        self._arena = arena = new_arena
        self._learned_offsets = new_learned
        self._learned_act = new_act
        reason = self._reason
        for code in self._trail:
            old = reason[code >> 1]
            if old >= 0:
                reason[code >> 1] = remap[old]
        # Rebuild the watch lists from the (still valid) watch positions.
        watches = self._watches
        for watch_list in watches:
            del watch_list[:]
        position = 0
        end = len(arena)
        while position < end:
            size = arena[position]
            first = arena[position + 1]
            second = arena[position + 2]
            stored = ~position if size == 2 else position
            watches[first ^ 1].append(second)
            watches[first ^ 1].append(stored)
            watches[second ^ 1].append(first)
            watches[second ^ 1].append(stored)
            position += size + 1
        self.db_reductions += 1


def solve_clauses(
    clauses: Iterable[Sequence[int]],
    num_vars: int = 0,
    assumptions: Sequence[int] = (),
    max_conflicts: Optional[int] = None,
) -> tuple:
    """Convenience wrapper mirroring :func:`repro.smt.sat.solve_clauses`."""
    solver = ArraySolver(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve(assumptions=assumptions, max_conflicts=max_conflicts)
    if result == SatResult.SAT:
        return result, solver.model()
    return result, None
