"""``repro.workloads`` — packet, table and pipeline generators for tests and benchmarks."""

from .packets import (
    PacketWorkload,
    adversarial_packets,
    malformed_ip_packets,
    random_ip_packets,
    well_formed_ip_packet,
)
from .pipelines import (
    fleet_catalog,
    ip_router_elements,
    ip_router_pipeline,
    nat_gateway_pipeline,
    synthetic_branchy_element,
    synthetic_pipeline,
)
from .tables import random_classifier_rules, random_routing_table

__all__ = [
    "PacketWorkload",
    "adversarial_packets",
    "fleet_catalog",
    "ip_router_elements",
    "ip_router_pipeline",
    "malformed_ip_packets",
    "nat_gateway_pipeline",
    "random_classifier_rules",
    "random_ip_packets",
    "random_routing_table",
    "synthetic_branchy_element",
    "synthetic_pipeline",
    "well_formed_ip_packet",
]
