"""``repro.workloads`` — packet, table, pipeline and churn generators for tests and benchmarks."""

from .churn import (
    ALTERNATE_ROUTES,
    CHURN_MUTATIONS,
    churned_fleet_catalog,
    default_mutation_target,
)
from .packets import (
    PacketWorkload,
    adversarial_packets,
    malformed_ip_packets,
    random_ip_packets,
    well_formed_ip_packet,
)
from .pipelines import (
    fleet_catalog,
    ip_router_elements,
    ip_router_pipeline,
    nat_gateway_pipeline,
    store_scale_catalog,
    straggler_catalog,
    synthetic_branchy_element,
    synthetic_pipeline,
)
from .tables import random_classifier_rules, random_routing_table

__all__ = [
    "ALTERNATE_ROUTES",
    "CHURN_MUTATIONS",
    "PacketWorkload",
    "adversarial_packets",
    "churned_fleet_catalog",
    "default_mutation_target",
    "fleet_catalog",
    "ip_router_elements",
    "ip_router_pipeline",
    "malformed_ip_packets",
    "nat_gateway_pipeline",
    "random_classifier_rules",
    "random_ip_packets",
    "random_routing_table",
    "store_scale_catalog",
    "straggler_catalog",
    "synthetic_branchy_element",
    "synthetic_pipeline",
    "well_formed_ip_packet",
]
