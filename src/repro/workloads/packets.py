"""Packet workload generators.

Deterministic (seeded) generators for well-formed, random and adversarial
packets, used by the concrete-execution tests and by the benchmark
harnesses when they replay verifier counterexamples against the dataplane.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List

from ..net.headers import (
    build_ethernet_frame,
    build_ipv4_packet,
    build_udp_datagram,
)


def well_formed_ip_packet(
    src: str = "10.0.0.1",
    dst: str = "10.0.0.2",
    ttl: int = 64,
    payload: bytes = b"payload",
    options: bytes = b"",
    with_ethernet: bool = False,
) -> bytes:
    """A single valid IPv4/UDP packet (optionally Ethernet-framed)."""
    datagram = build_udp_datagram(1234, 80, payload)
    packet = build_ipv4_packet(src, dst, datagram, ttl=ttl, options=options)
    if with_ethernet:
        return build_ethernet_frame("00:00:00:00:00:02", "00:00:00:00:00:01", packet)
    return packet


def random_ip_packets(
    count: int,
    seed: int = 0,
    with_ethernet: bool = False,
    max_payload: int = 32,
) -> List[bytes]:
    """Well-formed packets with randomised addresses, TTLs and payload sizes."""
    rng = random.Random(seed)
    packets = []
    for _ in range(count):
        src = f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
        dst = f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
        packets.append(
            well_formed_ip_packet(
                src=src,
                dst=dst,
                ttl=rng.randrange(2, 255),
                payload=bytes(rng.randrange(256) for _ in range(rng.randrange(max_payload))),
                with_ethernet=with_ethernet,
            )
        )
    return packets


def malformed_ip_packets(count: int, seed: int = 1, with_ethernet: bool = False) -> List[bytes]:
    """Packets with deliberately broken headers (bad version, IHL, lengths, checksums)."""
    rng = random.Random(seed)
    packets: List[bytes] = []
    for index in range(count):
        base = bytearray(well_formed_ip_packet(with_ethernet=with_ethernet))
        offset = 14 if with_ethernet else 0
        kind = index % 5
        if kind == 0:
            base[offset] = (rng.randrange(0, 16) << 4) | (base[offset] & 0x0F)  # version
        elif kind == 1:
            base[offset] = (base[offset] & 0xF0) | rng.randrange(0, 5)  # IHL < 5
        elif kind == 2:
            base[offset + 2 : offset + 4] = rng.randrange(0, 20).to_bytes(2, "big")  # total len
        elif kind == 3:
            base[offset + 10 : offset + 12] = rng.randrange(1 << 16).to_bytes(2, "big")  # checksum
        else:
            base = base[: offset + rng.randrange(0, 20)]  # truncated
        packets.append(bytes(base))
    return packets


def adversarial_packets(count: int, seed: int = 2, length: int = 64) -> List[bytes]:
    """Uniformly random byte blobs (fuzz-style input)."""
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(length)) for _ in range(count)]


@dataclass
class PacketWorkload:
    """A mixed workload: a reproducible stream of valid, malformed and random packets."""

    valid: int = 100
    malformed: int = 20
    random_blobs: int = 20
    seed: int = 0
    with_ethernet: bool = False
    _packets: List[bytes] = field(default_factory=list, repr=False)

    def packets(self) -> List[bytes]:
        if not self._packets:
            self._packets = (
                random_ip_packets(self.valid, seed=self.seed, with_ethernet=self.with_ethernet)
                + malformed_ip_packets(
                    self.malformed, seed=self.seed + 1, with_ethernet=self.with_ethernet
                )
                + adversarial_packets(self.random_blobs, seed=self.seed + 2)
            )
            random.Random(self.seed + 3).shuffle(self._packets)
        return list(self._packets)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self.packets())

    def __len__(self) -> int:
        return self.valid + self.malformed + self.random_blobs
