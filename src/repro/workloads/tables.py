"""Routing-table and classifier-rule generators."""

from __future__ import annotations

import random
from typing import List, Tuple


def random_routing_table(
    entries: int, ports: int = 4, seed: int = 0, include_default: bool = True
) -> List[Tuple[str, int]]:
    """A deterministic random list of (prefix, port) routes."""
    rng = random.Random(seed)
    routes: List[Tuple[str, int]] = []
    if include_default:
        routes.append(("0.0.0.0/0", 0))
    for _ in range(entries):
        length = rng.choice([8, 16, 24, 24, 24, 32])
        address = rng.randrange(1 << 32) & (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        prefix = ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))
        routes.append((f"{prefix}/{length}", rng.randrange(ports)))
    return routes


def random_classifier_rules(rules: int, seed: int = 0) -> List[str]:
    """Random Classifier patterns over the Ethernet type and IP protocol bytes."""
    rng = random.Random(seed)
    generated: List[str] = []
    for _ in range(rules):
        if rng.random() < 0.5:
            generated.append(f"12/{rng.choice(['0800', '0806', '86dd'])}")
        else:
            generated.append(f"23/{rng.randrange(256):02x}")
    generated.append("-")
    return generated
