"""Config-churn scenarios: realistic mutations of a fleet catalog.

Continuous certification only earns its keep if re-verification is
proportional to the *diff* between configurations, so benchmarks and
tests need realistic diffs to measure against.  Each mutation here
rebuilds :func:`~repro.workloads.pipelines.fleet_catalog` with exactly
one operator-shaped change applied, chosen to exercise one axis of the
change-impact classifier:

============= ======================================================
``routes``    one router's forwarding-table *contents* change (same
              program, same wiring) — the canonical cheap delta
``rename``    one pipeline's elements are renamed, nothing else —
              a no-op rewrite that must reuse everything
``rewire``    one router's elements are reconnected in a different
              order — same element set, different graph
``options``   one router's IPOptions element changes a program
              parameter (``max_options``) — an IR program change
``add``       a new pipeline joins the catalog
``remove``    one pipeline leaves the catalog
============= ======================================================

Everything is deterministic: the same (count, mutation) pair always
produces the same catalog, so delta runs are reproducible across
processes and machines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dataplane.elements import CheckIPHeader, DecIPTTL, IPLookup, IPOptions
from ..dataplane.pipeline import Pipeline
from .pipelines import (
    DEFAULT_ROUTES,
    fleet_catalog,
    ip_router_pipeline,
    nat_gateway_pipeline,
)

__all__ = [
    "ALTERNATE_ROUTES",
    "CHURN_MUTATIONS",
    "churned_fleet_catalog",
    "default_mutation_target",
]

#: A different-but-equivalent route set: same output ports (so the element
#: program is identical), different table contents.
ALTERNATE_ROUTES: Tuple[Tuple[str, int], ...] = (
    ("10.0.0.0/8", 0),
    ("172.16.0.0/12", 0),
    ("0.0.0.0/0", 0),
)

#: fleet_catalog's template cycle (see pipelines.fleet_catalog): index % 6
#: selects router-2, router-3, router-4, nat-gateway, synthetic, monitored.
_ROUTER_LENGTHS = {0: 2, 1: 3, 2: 4}


def _router_length(index: int) -> Optional[int]:
    return _ROUTER_LENGTHS.get(index % 6)


def default_mutation_target(mutation: str, count: int) -> int:
    """The smallest catalog index the mutation can be applied to."""
    minimum_length = {"routes": 2, "rename": 2, "rewire": 3, "options": 4}
    if mutation in minimum_length:
        for index in range(count):
            length = _router_length(index)
            if length is not None and length >= minimum_length[mutation]:
                return index
        raise ValueError(
            f"catalog of {count} pipelines has no router template long enough "
            f"for mutation {mutation!r}"
        )
    return 0


def _renamed_router(length: int, routes: Sequence[Tuple[str, int]], name: str) -> Pipeline:
    """The ip-router chain with every element renamed — configurations unchanged."""
    chain = [
        CheckIPHeader(name="check_ip_renamed", verify_checksum=False),
        IPLookup(list(routes), name="lookup_renamed"),
        DecIPTTL(name="dec_ttl_renamed"),
        IPOptions(name="ip_options_renamed", max_options=8),
    ]
    return Pipeline.chain(chain[:length], name=name)


def _rewired_router(length: int, routes: Sequence[Tuple[str, int]], name: str) -> Pipeline:
    """The same elements as the ip-router chain, wired in a different order.

    DecIPTTL moves ahead of IPLookup — a real (if inadvisable) operator
    change: the element set is identical, only the graph differs.
    """
    check = CheckIPHeader(name="check_ip", verify_checksum=False)
    lookup = IPLookup(list(routes), name="lookup")
    ttl = DecIPTTL(name="dec_ttl")
    chain: List = [check, ttl, lookup]
    if length >= 4:
        chain.append(IPOptions(name="ip_options", max_options=8))
    return Pipeline.chain(chain[:length], name=name)


def churned_fleet_catalog(
    count: int = 8,
    mutation: str = "routes",
    target: Optional[int] = None,
    routes: Sequence[Tuple[str, int]] = DEFAULT_ROUTES,
    name_prefix: str = "fleet",
) -> List[Pipeline]:
    """``fleet_catalog(count)`` with exactly one mutation applied.

    ``target`` is the catalog index to mutate (defaults to the first
    template the mutation applies to).  The untouched pipelines are
    rebuilt identically — their fingerprints match the unmutated
    catalog's, which is precisely what the change-impact engine keys on.
    """
    if mutation not in CHURN_MUTATIONS:
        raise ValueError(
            f"unknown mutation {mutation!r}; choose from {sorted(CHURN_MUTATIONS)}"
        )
    catalog = fleet_catalog(count, routes=routes, name_prefix=name_prefix)
    if mutation == "add":
        catalog.append(
            nat_gateway_pipeline(name=f"{name_prefix}-{count}-nat-gateway-added")
        )
        return catalog

    index = default_mutation_target(mutation, count) if target is None else target
    if not 0 <= index < count:
        raise ValueError(f"mutation target {index} outside catalog of {count} pipelines")
    if mutation == "remove":
        del catalog[index]
        return catalog

    length = _router_length(index)
    if length is None:
        raise ValueError(
            f"mutation {mutation!r} targets a router template; catalog index {index} "
            f"is not one (index % 6 must be 0, 1 or 2)"
        )
    name = catalog[index].name
    if mutation == "routes":
        catalog[index] = ip_router_pipeline(length=length, routes=ALTERNATE_ROUTES, name=name)
    elif mutation == "rename":
        catalog[index] = _renamed_router(length, routes, name)
    elif mutation == "rewire":
        catalog[index] = _rewired_router(length, routes, name)
    elif mutation == "options":
        catalog[index] = ip_router_pipeline(length=length, routes=routes, max_options=4, name=name)
    return catalog


#: Mutation name -> one-line description (the CLI's ``--help`` source of truth).
CHURN_MUTATIONS: Dict[str, str] = {
    "routes": "change one router's forwarding-table contents (table-only delta)",
    "rename": "rename one pipeline's elements (no-op rewrite; everything reuses)",
    "rewire": "reconnect one router's elements in a different order (wiring delta)",
    "options": "change one IPOptions element's max_options (IR program delta)",
    "add": "append a new pipeline to the catalog",
    "remove": "drop one pipeline from the catalog",
}
