"""The pipeline catalogue used by examples, tests and benchmarks.

``ip_router_pipeline`` is the reproduction of the paper's evaluation
target: pipelines that "combine elements from the default Click IP-Router
configuration (Classifier, EthEncap/EthDecap, CheckIPhdr, IPlookup,
DecTTL, IP options)".  ``synthetic_pipeline`` builds the parameterised
branchy pipelines behind the path-scaling experiment (E6).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..dataplane.element import Element
from ..dataplane.elements import (
    CheckIPHeader,
    Classifier,
    DecIPTTL,
    Discard,
    EthDecap,
    EthEncap,
    IPLookup,
    IPOptions,
    NAT,
    NetFlow,
)
from ..dataplane.pipeline import Pipeline
from ..ir.builder import ProgramBuilder
from ..ir.program import ElementProgram


DEFAULT_ROUTES: Tuple[Tuple[str, int], ...] = (
    ("10.0.0.0/8", 0),
    ("192.168.0.0/16", 0),
    ("0.0.0.0/0", 0),
)


def ip_router_elements(
    length: int = 6,
    verify_checksum: bool = False,
    max_options: int = 8,
    routes: Sequence[Tuple[str, int]] = DEFAULT_ROUTES,
) -> List[Element]:
    """The first ``length`` elements of the IP-router chain (IP header at offset 0).

    The full chain (length 6) is CheckIPHeader -> IPLookup -> DecIPTTL ->
    IPOptions -> NetFlow -> NAT; the paper's "pipelines of increasing
    length" experiments slice prefixes of it.
    """
    chain: List[Element] = [
        CheckIPHeader(name="check_ip", verify_checksum=verify_checksum),
        IPLookup(list(routes), name="lookup"),
        DecIPTTL(name="dec_ttl"),
        IPOptions(name="ip_options", max_options=max_options),
        NetFlow(name="netflow"),
        NAT(name="nat"),
    ]
    if not 1 <= length <= len(chain):
        raise ValueError(f"ip_router_elements supports lengths 1..{len(chain)}, got {length}")
    return chain[:length]


def ip_router_pipeline(
    length: int = 4,
    verify_checksum: bool = False,
    max_options: int = 8,
    routes: Sequence[Tuple[str, int]] = DEFAULT_ROUTES,
    with_ethernet: bool = False,
    name: Optional[str] = None,
) -> Pipeline:
    """A linear IP-router pipeline of the requested length.

    With ``with_ethernet`` the pipeline is wrapped in Classifier ->
    EthDecap at the front and EthEncap at the back (packets then enter
    with their Ethernet header in place); non-IPv4 traffic goes to a
    Discard sink, as in the Click IP-router configuration.
    """
    core = ip_router_elements(
        length, verify_checksum=verify_checksum, max_options=max_options, routes=routes
    )
    pipeline_name = name or f"ip-router-{length}{'-eth' if with_ethernet else ''}"
    if not with_ethernet:
        return Pipeline.chain(core, name=pipeline_name)

    pipeline = Pipeline(name=pipeline_name)
    classifier = Classifier(["12/0800", "-"], name="classify")
    decap = EthDecap(name="eth_decap")
    encap = EthEncap(name="eth_encap")
    sink = Discard(name="non_ip_sink")
    pipeline.connect(classifier, decap, source_port=0)
    pipeline.connect(classifier, sink, source_port=1)
    previous: Element = decap
    for element in core:
        pipeline.connect(previous, element)
        previous = element
    pipeline.connect(previous, encap)
    return pipeline


def nat_gateway_pipeline(
    verify_checksum: bool = False,
    name: str = "nat-gateway",
) -> Pipeline:
    """CheckIPHeader -> NetFlow -> NAT: the stateful-pipeline scenario (E8)."""
    return Pipeline.chain(
        [
            CheckIPHeader(name="gw_check", verify_checksum=verify_checksum),
            NetFlow(name="gw_netflow"),
            NAT(name="gw_nat"),
        ],
        name=name,
    )


class SyntheticBranchyElement(Element):
    """An element with a configurable number of independent branches.

    Each branch inspects one packet byte, giving exactly ``2^branches``
    feasible paths per element — the idealised element of the paper's
    path-counting argument (E6).
    """

    def __init__(self, branches: int = 3, offset: int = 0, name: Optional[str] = None) -> None:
        super().__init__(name=name)
        self.branches = branches
        self.offset = offset

    def build_program(self) -> ElementProgram:
        builder = ProgramBuilder(self.name, description=f"{self.branches} independent branches")
        builder.assign("acc", 0)
        for index in range(self.branches):
            byte = builder.load(self.offset + index, 1)
            with builder.if_(byte > 127):
                builder.assign("acc", builder.reg("acc") + (1 << index))
        builder.set_meta("branch_mask", builder.reg("acc"))
        builder.emit(0)
        return builder.build()

    def configuration_key(self) -> str:
        return f"SyntheticBranchy:{self.branches}:{self.offset}"


def synthetic_branchy_element(branches: int, offset: int = 0, name: Optional[str] = None) -> Element:
    """Factory for :class:`SyntheticBranchyElement`."""
    return SyntheticBranchyElement(branches=branches, offset=offset, name=name)


def synthetic_pipeline(
    elements: int, branches_per_element: int, name: Optional[str] = None
) -> Pipeline:
    """A chain of ``elements`` synthetic elements with ``branches_per_element`` branches each.

    Each element inspects its *own* packet bytes (disjoint offsets), so the
    per-element branches are independent across the pipeline — the whole
    pipeline genuinely has ``2^(k*n)`` feasible paths, which is the
    configuration behind the paper's path-counting argument.
    """
    chain = [
        SyntheticBranchyElement(
            branches=branches_per_element,
            offset=index * branches_per_element,
            name=f"branchy_{index}",
        )
        for index in range(elements)
    ]
    return Pipeline.chain(chain, name=name or f"synthetic-{elements}x{branches_per_element}")


def fleet_catalog(
    count: int = 8,
    verify_checksum: bool = False,
    routes: Sequence[Tuple[str, int]] = DEFAULT_ROUTES,
    name_prefix: str = "fleet",
) -> List[Pipeline]:
    """A deterministic catalog of ``count`` diverse pipelines for fleet certification.

    The catalog cycles through templates that deliberately *share* element
    configurations — every router variant starts with the same
    CheckIPHeader and IPLookup configuration, the gateways share the
    NetFlow/NAT pair — so the fleet orchestrator's cross-pipeline
    deduplication has real work to do: the number of distinct Step-1 jobs
    grows much slower than the number of pipelines.  Fresh element
    *instances* are built per pipeline (elements own private state and can
    belong to only one pipeline), but their configuration keys collide by
    construction.
    """

    def router(length: int, index: int) -> Pipeline:
        return ip_router_pipeline(
            length=length,
            verify_checksum=verify_checksum,
            routes=routes,
            name=f"{name_prefix}-{index}-router-{length}",
        )

    def gateway(index: int) -> Pipeline:
        return nat_gateway_pipeline(
            verify_checksum=verify_checksum, name=f"{name_prefix}-{index}-nat-gateway"
        )

    def branchy(index: int) -> Pipeline:
        return synthetic_pipeline(3, 2, name=f"{name_prefix}-{index}-synthetic-3x2")

    def monitored_router(index: int) -> Pipeline:
        # Router prefix followed by the gateway's monitoring pair: shares
        # element configurations with both template families.
        elements = ip_router_elements(
            3, verify_checksum=verify_checksum, routes=routes
        ) + [NetFlow(name="edge_netflow"), NAT(name="edge_nat")]
        return Pipeline.chain(elements, name=f"{name_prefix}-{index}-monitored-router")

    templates = [
        lambda index: router(2, index),
        lambda index: router(3, index),
        lambda index: router(4, index),
        gateway,
        branchy,
        monitored_router,
    ]
    return [templates[index % len(templates)](index) for index in range(count)]


def store_scale_catalog(count: int = 1000, name_prefix: str = "scale") -> List[Pipeline]:
    """``count`` *distinct* pipelines built from a tiny shared element pool.

    The store-scaling workload needs the opposite mix from
    :func:`fleet_catalog`: a catalog big enough that per-pipeline store
    traffic (verdict records, fingerprints) dominates, without paying
    ``count`` symbolic executions.  Pipelines are chains over a pool of
    six :class:`SyntheticBranchyElement` configurations — every distinct
    *sequence* of pool configurations is a distinct pipeline fingerprint
    (wiring order is fingerprinted), so the catalog yields ``count``
    verdict-store entries while Step 1 summarizes only the six pool
    configurations.  Enumeration is deterministic (mixed-radix over the
    pool, shortest chains first), so two runs — or two store backends —
    certify byte-identical catalogs.
    """
    pool = [(branches, offset) for branches in (1, 2, 3) for offset in (0, 4)]
    pipelines: List[Pipeline] = []
    chain_length = 2
    code = 0
    while len(pipelines) < count:
        if code >= len(pool) ** chain_length:
            chain_length += 1
            code = 0
            continue
        digits: List[int] = []
        value = code
        for _ in range(chain_length):
            digits.append(value % len(pool))
            value //= len(pool)
        chain = [
            SyntheticBranchyElement(
                branches=pool[digit][0],
                offset=pool[digit][1],
                name=f"pool_b{position}",
            )
            for position, digit in enumerate(digits)
        ]
        pipelines.append(
            Pipeline.chain(chain, name=f"{name_prefix}-{len(pipelines)}")
        )
        code += 1
    return pipelines


def straggler_catalog(
    count: int = 8, straggler_branches: int = 9, name_prefix: str = "straggle"
) -> List[Pipeline]:
    """A catalog with one deliberately slow pipeline in front of quick ones.

    The scheduler workload: pipeline 0 chains a ``straggler_branches``-way
    :class:`SyntheticBranchyElement` (``2^branches`` paths, so its Step-1
    summary dominates the run) ahead of a pool element, and the remaining
    ``count - 1`` pipelines are the quick :func:`store_scale_catalog`
    chains.  Under the legacy wave-synchronous pool every quick pipeline's
    Step-2 verification waits for the straggler's wave to join; the
    dependency-aware scheduler verifies them while the straggler is still
    summarizing.  Deterministic, like every workload catalog.
    """
    if count < 2:
        raise ValueError(f"straggler catalog needs at least 2 pipelines, got {count}")
    straggler = Pipeline.chain(
        [
            SyntheticBranchyElement(
                branches=straggler_branches, offset=0, name="straggler"
            ),
            SyntheticBranchyElement(branches=1, offset=0, name="pool_b1"),
        ],
        name=f"{name_prefix}-heavy",
    )
    quick = store_scale_catalog(count - 1, name_prefix=name_prefix)
    return [straggler] + quick
