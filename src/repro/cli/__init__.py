"""``repro.cli`` — the operator/CI front door: ``python -m repro``.

Everything the orchestrator layer can do — full and delta fleet
certification, catalog diffing, benchmark-regression gating, store
maintenance — drivable from a shell, with human *and* machine (JSON)
output and exit codes CI can gate on:

========== ==========================================================
``0``      every pipeline certified (``certify``) / no differences
           (``diff``) / no regression (``bench-compare``)
``1``      a property is violated / catalogs differ / a tracked
           benchmark metric regressed past tolerance
``2``      a verdict is ``unknown`` (budget exhausted) — neither
           proved nor refuted, so neither success nor failure
``64``     usage error (bad flags, unparseable spec, missing file)
========== ==========================================================
"""

from .main import main

__all__ = ["main"]
