"""Shell-friendly specs: build catalogs and properties from short strings.

CI jobs and operators address workloads by *spec* instead of writing
Python: ``fleet:8`` is an eight-pipeline catalog, ``churn:routes:8`` the
same catalog with one routing table changed, ``reachability:10.0.0.1``
the paper's destination-reachability property.  Specs are deliberately
tiny — a real deployment would parse its Click configurations instead —
but they make every engine feature reachable from a shell.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..dataplane.elements import IPOptions
from ..dataplane.pipeline import Pipeline
from ..verify.properties import (
    BoundedInstructions,
    CrashFreedom,
    Property,
    destination_reachability,
)
from ..workloads import (
    CHURN_MUTATIONS,
    churned_fleet_catalog,
    fleet_catalog,
    ip_router_pipeline,
    nat_gateway_pipeline,
    synthetic_pipeline,
)

__all__ = ["CATALOG_SPECS", "PROPERTY_SPECS", "SpecError", "parse_catalog", "parse_properties"]


class SpecError(ValueError):
    """A malformed catalog or property spec (reported as a usage error)."""


#: Spec syntax -> description, for ``--help`` text.
CATALOG_SPECS = {
    "fleet:N": "the deterministic N-pipeline fleet catalog",
    "churn:MUTATION:N[:TARGET]": (
        "fleet:N with one mutation applied; mutations: " + ", ".join(sorted(CHURN_MUTATIONS))
    ),
    "ip-router:LENGTH": "one linear IP-router pipeline of the given length (1-6)",
    "nat-gateway": "the stateful NAT gateway pipeline",
    "synthetic:ELEMSxBRANCHES": "one synthetic branchy pipeline, e.g. synthetic:3x2",
    "unprotected-ipoptions": "IPOptions with no upstream header check (a known crash violation)",
}

PROPERTY_SPECS = {
    "crash-freedom": "no packet can crash the pipeline",
    "bounded-instructions[:BOUND]": "every packet executes at most BOUND instructions",
    "reachability:DEST_IP[:EXEMPT,...]": (
        "packets to DEST_IP are never dropped, except by the EXEMPT elements"
    ),
}


def _positive_int(text: str, what: str) -> int:
    value = _non_negative_int(text, what)
    if value == 0:
        raise SpecError(f"{what} must be positive, got {value}")
    return value


def _non_negative_int(text: str, what: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise SpecError(f"{what} must be an integer, got {text!r}") from None
    if value < 0:
        raise SpecError(f"{what} must not be negative, got {value}")
    return value


def parse_catalog(specs: Sequence[str]) -> List[Pipeline]:
    """Build the concatenated catalog described by one or more specs."""
    catalog: List[Pipeline] = []
    for spec in specs:
        catalog.extend(_parse_one_catalog(spec))
    if not catalog:
        raise SpecError("no catalog specified")
    return catalog


def _parse_one_catalog(spec: str) -> List[Pipeline]:
    head, _, rest = spec.partition(":")
    if head == "fleet":
        return fleet_catalog(_positive_int(rest, "fleet catalog size"))
    if head == "churn":
        mutation, _, tail = rest.partition(":")
        if mutation not in CHURN_MUTATIONS:
            raise SpecError(
                f"unknown churn mutation {mutation!r}; choose from {sorted(CHURN_MUTATIONS)}"
            )
        count_text, _, target_text = tail.partition(":")
        count = _positive_int(count_text or "8", "churn catalog size")
        target: Optional[int] = None
        if target_text:
            target = _non_negative_int(target_text, "churn target index")
        return churned_fleet_catalog(count, mutation, target=target)
    if head == "ip-router":
        return [ip_router_pipeline(length=_positive_int(rest, "router length"))]
    if head == "nat-gateway" and not rest:
        return [nat_gateway_pipeline()]
    if head == "synthetic":
        elements_text, _, branches_text = rest.partition("x")
        return [
            synthetic_pipeline(
                _positive_int(elements_text, "synthetic element count"),
                _positive_int(branches_text, "synthetic branch count"),
            )
        ]
    if head == "unprotected-ipoptions" and not rest:
        return [
            Pipeline.chain(
                [IPOptions(name="opts", max_options=8)], name="unprotected-ipoptions"
            )
        ]
    raise SpecError(
        f"unknown catalog spec {spec!r}; known forms: {', '.join(sorted(CATALOG_SPECS))}"
    )


def _parse_ipv4(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4 or not all(part.isdigit() and int(part) <= 255 for part in parts):
        raise SpecError(f"{text!r} is not a dotted-quad IPv4 address")
    value = 0
    for part in parts:
        value = (value << 8) | int(part)
    return value


def parse_properties(specs: Sequence[str]) -> List[Property]:
    """Build the property list described by the specs (default: crash freedom)."""
    if not specs:
        return [CrashFreedom()]
    properties: List[Property] = []
    for spec in specs:
        head, _, rest = spec.partition(":")
        if head == "crash-freedom" and not rest:
            properties.append(CrashFreedom())
        elif head == "bounded-instructions":
            properties.append(
                BoundedInstructions(bound=_positive_int(rest or "10000", "instruction bound"))
            )
        elif head == "reachability" and rest:
            address_text, _, exempt_text = rest.partition(":")
            exempt = {name for name in exempt_text.split(",") if name}
            properties.append(
                destination_reachability(_parse_ipv4(address_text), exempt_elements=exempt)
            )
        else:
            raise SpecError(
                f"unknown property spec {spec!r}; known forms: "
                + ", ".join(sorted(PROPERTY_SPECS))
            )
    return properties
