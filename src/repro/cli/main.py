"""``python -m repro`` argument parsing and subcommand dispatch.

Five subcommands, one per operational question:

* ``certify`` — is every pipeline in the catalog safe?  Full or delta
  (``--store``/``--verdict-store``/``--baseline``) fleet certification;
  ``--trace`` additionally exports a span trace of where the time went.
* ``diff`` — what would a configuration change affect?  Structural diff
  of two catalogs/manifests, no verification.
* ``bench-compare`` — did performance regress?  Gate ``BENCH_*.json``
  against committed baselines.
* ``trace`` — where did a certification spend its time?  Summarize a
  ``--trace`` export per phase / pipeline / element.
* ``store`` — maintenance (``gc``, ``stats``) for the on-disk tiers.

Exit codes are documented in :mod:`repro.cli`; ``main`` returns them
instead of raising ``SystemExit`` so tests can call it in-process.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import List, NoReturn, Optional, Sequence, Tuple, Union

from ..orchestrator import (
    SCHEDULES,
    OrchestratorError,
    QueryStore,
    RiskStore,
    SummaryStore,
    VerdictStore,
    diff_manifests,
    migrate_store,
    recertify,
)
from ..obs.trace import Tracer, load_trace, summarize_spans
from ..orchestrator.errors import StoreError
from ..symbex.engine import StaticTableMode, SymbexOptions
from ..verify.report import Verdict
from .bench_compare import compare_baselines, format_checks
from .specs import CATALOG_SPECS, PROPERTY_SPECS, SpecError, parse_catalog, parse_properties

__all__ = [
    "EXIT_OK",
    "EXIT_UNKNOWN",
    "EXIT_USAGE",
    "EXIT_VIOLATED",
    "main",
]

EXIT_OK = 0
EXIT_VIOLATED = 1
EXIT_UNKNOWN = 2
EXIT_USAGE = 64


class _UsageError(Exception):
    """Raised internally for anything that is the caller's fault."""


class _Parser(argparse.ArgumentParser):
    """argparse that reports usage problems as exit code 64, not 2.

    The default exit code 2 would collide with ``certify``'s "verdict
    unknown" — a CI gate must be able to tell "you typo'd a flag" from
    "the verifier ran out of budget".
    """

    def error(self, message: str) -> NoReturn:
        raise _UsageError(message)


def _build_parser() -> _Parser:
    parser = _Parser(
        prog="python -m repro",
        description="Continuous certification of software dataplanes.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "catalog specs:\n"
            + "\n".join(f"  {spec:28} {text}" for spec, text in sorted(CATALOG_SPECS.items()))
            + "\n\nproperty specs:\n"
            + "\n".join(f"  {spec:28} {text}" for spec, text in sorted(PROPERTY_SPECS.items()))
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    certify = commands.add_parser(
        "certify",
        help="certify a catalog (full pass, or delta with --verdict-store/--baseline)",
    )
    certify.add_argument(
        "--catalog", action="append", required=True, metavar="SPEC",
        help="catalog spec (repeatable; catalogs concatenate)",
    )
    certify.add_argument(
        "--property", action="append", default=[], metavar="SPEC", dest="properties",
        help="property spec (repeatable; default crash-freedom)",
    )
    certify.add_argument(
        "--lengths", default="64", metavar="CSV",
        help="comma-separated input packet lengths (default 64)",
    )
    certify.add_argument("--workers", type=int, default=1, help="worker processes (default 1)")
    certify.add_argument(
        "--schedule", choices=SCHEDULES, default="fifo", metavar="POLICY",
        help="parallel scheduling policy: fifo (catalog order, default), risk "
             "(churn/verdict history first; needs --risk-store), largest-first "
             "(most elements first), or off (legacy wave-synchronous pool)",
    )
    certify.add_argument(
        "--risk-store", metavar="DIR",
        help="risk history directory: feeds --schedule risk and records this "
             "run's churn/violations for the next one",
    )
    certify.add_argument("--store", metavar="DIR", help="summary store directory (L2 tier)")
    certify.add_argument(
        "--store-backend", choices=("json", "sqlite"), default=None, metavar="NAME",
        help="store backend for every tier: json (one file per entry) or sqlite "
             "(batched single-file WAL database); default auto-detects from the "
             "store layout, json for fresh roots",
    )
    certify.add_argument(
        "--verdict-store", metavar="DIR",
        help="verdict store directory: enables delta mode (unchanged pipelines reuse verdicts)",
    )
    certify.add_argument(
        "--query-store", metavar="DIR",
        help="query store directory (persistent L3 solver-query cache: warm runs "
             "answer solver questions from disk, zero SAT-core calls when unchanged)",
    )
    certify.add_argument(
        "--baseline", metavar="MANIFEST",
        help="previous catalog manifest: attaches impact provenance to each verdict",
    )
    certify.add_argument(
        "--emit-manifest", metavar="PATH",
        help="write this catalog's manifest (the next run's --baseline)",
    )
    certify.add_argument(
        "--report", metavar="PATH", help="write the full certification report as JSON"
    )
    certify.add_argument("--json", action="store_true", help="print the JSON report to stdout")
    certify.add_argument(
        "--max-paths", type=int, default=None, metavar="N",
        help="per-element symbolic path budget (blown budgets yield verdict 'unknown')",
    )
    certify.add_argument(
        "--merge", choices=("off", "conservative", "aggressive"), default=None,
        metavar="MODE",
        help="path merging at branch joins: conservative (ite-lift sibling states "
             "within the ite budget, default), aggressive (also merge matching "
             "terminated states, no budget), or off (fork everything; the "
             "differential-testing reference)",
    )
    certify.add_argument("--max-counterexamples", type=int, default=3, metavar="N")
    certify.add_argument(
        "--no-replay", action="store_true",
        help="skip confirming counterexamples on the concrete dataplane",
    )
    certify.add_argument(
        "--instruction-bounds", action="store_true",
        help="also compute each pipeline's instruction bound",
    )
    certify.add_argument(
        "--havoc-tables", action="store_true",
        help="havoc static tables (prove for any table contents, not the configured ones)",
    )
    certify.add_argument(
        "--sat-backend", choices=("reference", "array", "external"), default=None,
        metavar="NAME",
        help="SAT core: array (flat-arena CDCL, default), reference (from-scratch "
             "oracle), or external (installed DIMACS solver, e.g. minisat/kissat)",
    )
    certify.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a span trace of the run and write it to PATH "
             "(inspect with 'trace summary', or load chrome format in Perfetto)",
    )
    certify.add_argument(
        "--trace-format", choices=("chrome", "jsonl"), default="chrome",
        help="trace export format: chrome (chrome://tracing / Perfetto, default) "
             "or jsonl (one span per line)",
    )

    trace = commands.add_parser("trace", help="inspect exported span traces")
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_commands.add_parser(
        "summary", help="per-phase / per-pipeline / per-element time breakdown"
    )
    trace_summary.add_argument(
        "trace_file", metavar="TRACE",
        help="a certify --trace export (chrome or jsonl, autodetected)",
    )
    trace_summary.add_argument("--json", action="store_true")

    diff = commands.add_parser(
        "diff", help="classify what changed between two catalogs/manifests (no verification)"
    )
    diff.add_argument("old", help="baseline: a manifest JSON file or a catalog spec")
    diff.add_argument("new", help="candidate: a manifest JSON file or a catalog spec")
    diff.add_argument("--json", action="store_true", help="print the impact report as JSON")

    compare = commands.add_parser(
        "bench-compare", help="gate BENCH_*.json files against committed baselines"
    )
    compare.add_argument(
        "--baseline", required=True, metavar="PATH",
        help="baseline file or directory of baseline *.json files",
    )
    compare.add_argument(
        "--current", default=".", metavar="DIR",
        help="directory holding the BENCH_*.json files (default .)",
    )
    compare.add_argument(
        "--tolerance", type=float, default=0.35,
        help="fallback relative slack for baselines that pin neither a "
             "file-level nor a per-metric tolerance (default 0.35)",
    )
    compare.add_argument("--json", action="store_true", help="print per-metric checks as JSON")

    store = commands.add_parser("store", help="maintain the on-disk store tiers")
    store_commands = store.add_subparsers(dest="store_command", required=True)
    for verb, text in (("gc", "sweep debris and optionally evict old entries"),
                       ("stats", "print entry counts and sizes"),
                       ("migrate", "migrate store roots to the current SQLite schema "
                                   "(JSON layout -> SQLite, or v(N) -> v(N+1) in place)")):
        sub = store_commands.add_parser(verb, help=text)
        sub.add_argument("--store", metavar="DIR", help="summary store directory")
        sub.add_argument("--verdict-store", metavar="DIR", help="verdict store directory")
        sub.add_argument("--query-store", metavar="DIR", help="query store directory")
        sub.add_argument("--json", action="store_true")
        if verb == "gc":
            sub.add_argument(
                "--older-than-days", type=float, default=None, metavar="DAYS",
                help="also evict entries not touched for DAYS (default: debris only)",
            )
    return parser


# -- certify --------------------------------------------------------------------------


def _parse_lengths(text: str) -> List[int]:
    try:
        lengths = [int(part) for part in text.split(",") if part]
    except ValueError:
        raise _UsageError(f"--lengths must be comma-separated integers, got {text!r}") from None
    if not lengths or any(length <= 0 for length in lengths):
        raise _UsageError(f"--lengths must be positive integers, got {text!r}")
    return lengths


def _load_manifest(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise _UsageError(f"cannot read manifest {path}: {exc}") from None


def _run_certify(args: argparse.Namespace) -> int:
    catalog = parse_catalog(args.catalog)
    properties = parse_properties(args.properties)
    options = SymbexOptions(
        static_table_mode=StaticTableMode.HAVOC if args.havoc_tables else StaticTableMode.CONCRETE,
        sat_backend=args.sat_backend,
    )
    if args.max_paths is not None:
        options.max_paths = args.max_paths
    if args.merge is not None:
        options.merge = args.merge
    baseline = _load_manifest(args.baseline) if args.baseline else None
    run_tracer = Tracer() if args.trace else None

    result = recertify(
        catalog,
        properties,
        baseline=baseline,
        input_lengths=_parse_lengths(args.lengths),
        workers=args.workers,
        store=SummaryStore(args.store, backend=args.store_backend) if args.store else None,
        verdict_store=(
            VerdictStore(args.verdict_store, backend=args.store_backend)
            if args.verdict_store else None
        ),
        query_store=(
            QueryStore(args.query_store, backend=args.store_backend)
            if args.query_store else None
        ),
        schedule=args.schedule,
        risk_store=(
            RiskStore(args.risk_store, backend=args.store_backend)
            if args.risk_store else None
        ),
        options=options,
        max_counterexamples=args.max_counterexamples,
        confirm_by_replay=not args.no_replay,
        instruction_bounds=args.instruction_bounds,
        trace=run_tracer,
    )
    report = result.report

    verdicts = {verdict for _, _, verdict in report.verdicts()}
    if Verdict.VIOLATED in verdicts:
        exit_code = EXIT_VIOLATED
    elif Verdict.UNKNOWN in verdicts:
        exit_code = EXIT_UNKNOWN
    else:
        exit_code = EXIT_OK

    document = {
        "command": "certify",
        "exit_code": exit_code,
        "statistics": dataclasses.asdict(report.statistics),
        "certifications": [c.to_dict() for c in report.certifications],
        "impact": result.impact.to_dict() if result.impact else None,
    }
    if run_tracer is not None:
        if args.trace_format == "jsonl":
            events = run_tracer.export_jsonl(args.trace)
        else:
            events = run_tracer.export_chrome(args.trace)
        document["trace"] = {
            "path": args.trace,
            "format": args.trace_format,
            "summary": run_tracer.summary(),
        }
        if not args.json:
            print(f"trace      : {events} events -> {args.trace} ({args.trace_format})")
    if args.emit_manifest:
        Path(args.emit_manifest).write_text(json.dumps(result.manifest, indent=2) + "\n")
    if args.report:
        Path(args.report).write_text(json.dumps(document, indent=2) + "\n")
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        print(result.summary())
        for certification in report.certifications:
            marker = "ok " if certification.certified else "NOT"
            causes = f"  [{'; '.join(certification.impact_causes)}]" if certification.impact_causes else ""
            print(
                f"{marker} {certification.pipeline_name}: "
                + ", ".join(f"{r.property_name}={r.verdict}" for r in certification.results)
                + f" ({certification.provenance})" + causes
            )
    return exit_code


# -- diff -----------------------------------------------------------------------------


def _manifest_or_catalog(argument: str) -> dict:
    from ..orchestrator import catalog_manifest

    if argument.endswith(".json") or Path(argument).is_file():
        return _load_manifest(argument)
    return catalog_manifest(parse_catalog([argument]))


def _run_diff(args: argparse.Namespace) -> int:
    impact = diff_manifests(_manifest_or_catalog(args.old), _manifest_or_catalog(args.new))
    if args.json:
        print(json.dumps(impact.to_dict(), indent=2))
    else:
        print(impact.summary())
    changed = bool(impact.impacted or impact.removed)
    return EXIT_VIOLATED if changed else EXIT_OK


# -- trace ----------------------------------------------------------------------------


def _run_trace(args: argparse.Namespace) -> int:
    """Summarize a ``certify --trace`` export (either format, autodetected).

    An unreadable file is a usage error; a readable-but-empty trace exits
    :data:`EXIT_UNKNOWN` so a CI smoke step can assert "the traced run
    actually recorded spans" with no extra parsing.
    """
    try:
        spans = load_trace(args.trace_file)
    except (OSError, json.JSONDecodeError) as exc:
        raise _UsageError(f"cannot read trace {args.trace_file}: {exc}") from None
    summary = summarize_spans(spans)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"trace      : {summary['spans']} spans, {summary['events']} events, "
            f"{summary['wall_seconds']:.3f}s wall"
        )
        for name, phase in summary["phases"].items():
            print(
                f"phase      : {name:12} {phase['count']:8d} x  {phase['seconds']:10.3f}s"
            )
        for name, seconds in summary["pipelines"].items():
            print(f"pipeline   : {name:28} {seconds:10.3f}s")
        for name, seconds in summary["elements"].items():
            print(f"element    : {name:28} {seconds:10.3f}s")
    if summary["spans"] == 0 and summary["events"] == 0:
        print(f"error: trace {args.trace_file} holds no spans", file=sys.stderr)
        return EXIT_UNKNOWN
    return EXIT_OK


# -- bench-compare --------------------------------------------------------------------


def _run_bench_compare(args: argparse.Namespace) -> int:
    if args.tolerance < 0:
        raise _UsageError(f"--tolerance must be >= 0, got {args.tolerance}")
    checks, ok = compare_baselines(
        Path(args.baseline), Path(args.current), tolerance=args.tolerance
    )
    if args.json:
        print(json.dumps({"ok": ok, "checks": [check.to_dict() for check in checks]}, indent=2))
    else:
        print(format_checks(checks))
        print(f"\nbench-compare: {'ok' if ok else 'REGRESSION'} "
              f"({sum(1 for c in checks if c.ok)}/{len(checks)} metrics within tolerance)")
    return EXIT_OK if ok else EXIT_VIOLATED


# -- store maintenance ----------------------------------------------------------------


def _open_stores(
    args: argparse.Namespace,
) -> List[Tuple[str, Union[SummaryStore, VerdictStore, QueryStore]]]:
    stores: List[Tuple[str, Union[SummaryStore, VerdictStore, QueryStore]]] = []
    if args.store:
        stores.append(("summary", SummaryStore(args.store)))
    if args.verdict_store:
        stores.append(("verdict", VerdictStore(args.verdict_store)))
    if args.query_store:
        stores.append(("query", QueryStore(args.query_store)))
    if not stores:
        raise _UsageError("pass --store, --verdict-store and/or --query-store")
    return stores


#: Query-cache tiers as (display label, persisted counter field), in the
#: order the cache itself probes them.
_QUERY_TIERS = (
    ("exact", "exact_hits"),
    ("core-subset", "unsat_core_hits"),
    ("superset", "superset_sat_hits"),
    ("model-reuse", "model_reuse_hits"),
    ("l3", "l3_hits"),
)


def _query_tier_rates(metrics: dict) -> dict:
    """Per-tier hit rates over the slices every tier got a chance at."""
    slices = float(metrics.get("slices", 0) or 0)
    rates: dict = {}
    total = 0
    for tier_label, field_name in _QUERY_TIERS:
        hits = int(metrics.get(field_name, 0) or 0)
        total += hits
        rates[tier_label] = hits / slices if slices else 0.0
    rates["overall"] = total / slices if slices else 0.0
    return rates


def _run_store_migrate(args: argparse.Namespace) -> int:
    """``store migrate``: bring each named root to the current SQLite schema.

    Works on the raw roots (not opened :class:`Store` objects — opening
    an outdated SQLite store is exactly the loud error that sends people
    here).  Unknown *future* schema versions refuse with
    :data:`EXIT_USAGE` via :class:`StoreError`.
    """
    roots = [("summary", args.store, "summary store"),
             ("verdict", args.verdict_store, "verdict store"),
             ("query", args.query_store, "query store")]
    roots = [(label, root, kind) for label, root, kind in roots if root]
    if not roots:
        raise _UsageError("pass --store, --verdict-store and/or --query-store")
    document: dict = {"command": "store migrate", "stores": {}}
    for label, root, kind in roots:
        result = migrate_store(root, kind=kind)
        document["stores"][label] = dataclasses.asdict(result)
        if not args.json:
            print(f"{label} store {result.root}: {result.summary()}")
    if args.json:
        print(json.dumps(document, indent=2))
    return EXIT_OK


def _run_store(args: argparse.Namespace) -> int:
    if args.store_command == "migrate":
        return _run_store_migrate(args)
    stores = _open_stores(args)
    document: dict = {"command": f"store {args.store_command}", "stores": {}}
    for label, store in stores:
        if args.store_command == "gc":
            horizon = (
                args.older_than_days * 86400.0 if args.older_than_days is not None else None
            )
            result = store.gc(older_than_seconds=horizon)
            document["stores"][label] = dataclasses.asdict(result)
            if not args.json:
                print(f"{label} store {store.root}: {result.summary()}")
        else:
            entry: dict = {
                "root": str(store.root),
                "backend": store.backend_name,
                "entries": len(store),
                "bytes": store.size_bytes(),
            }
            if isinstance(store, QueryStore):
                metrics = store.load_metrics()
                if metrics:
                    entry["metrics"] = metrics
                    entry["tier_rates"] = _query_tier_rates(metrics)
            document["stores"][label] = entry
            if not args.json:
                print(f"{label} store {store.root} [{store.backend_name}]: "
                      f"{len(store)} entries, {store.size_bytes()} bytes")
                rates = entry.get("tier_rates")
                if rates:
                    metrics = entry["metrics"]
                    print(
                        f"  query traffic: {metrics.get('runs', 0)} runs, "
                        f"{metrics.get('checks', 0)} checks, "
                        f"{metrics.get('slices', 0)} slices"
                    )
                    print(
                        "  tier hit rates: "
                        + ", ".join(
                            f"{tier_label} {rates[tier_label]:.1%}"
                            for tier_label, _field in _QUERY_TIERS
                        )
                        + f" (overall {rates['overall']:.1%})"
                    )
                    if metrics.get("paths_explored") or metrics.get("paths_merged"):
                        print(
                            f"  path merging: {metrics.get('paths_explored', 0)} paths "
                            f"explored, {metrics.get('paths_merged', 0)} merged "
                            f"({metrics.get('ites_introduced', 0)} ites, "
                            f"{metrics.get('merge_rejected', 0)} rejected)"
                        )
    if args.json:
        print(json.dumps(document, indent=2))
    return EXIT_OK


# -- entry point ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the CLI; returns the exit code (never raises ``SystemExit`` itself)."""
    parser = _build_parser()
    try:
        args = parser.parse_args(list(argv) if argv is not None else None)
        if args.command == "certify":
            return _run_certify(args)
        if args.command == "diff":
            return _run_diff(args)
        if args.command == "bench-compare":
            return _run_bench_compare(args)
        if args.command == "trace":
            return _run_trace(args)
        if args.command == "store":
            return _run_store(args)
        raise _UsageError(f"unknown command {args.command!r}")  # pragma: no cover
    except (_UsageError, SpecError, OrchestratorError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
