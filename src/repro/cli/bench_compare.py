"""The benchmark-regression gate: compare ``BENCH_*.json`` against baselines.

Every benchmark in ``benchmarks/`` writes a machine-readable
``BENCH_<name>.json``.  A *baseline* file
(``benchmarks/baselines/<name>.json``) pins the metrics worth gating on:

.. code-block:: json

    {
      "bench": "fleet",
      "tolerance": 0.35,
      "metrics": {
        "warm_summaries_computed": {"value": 0, "direction": "lower", "tolerance": 0},
        "speedup_vs_serial":       {"value": 0.75, "direction": "higher"}
      }
    }

``direction`` says which way is better: ``lower`` metrics (seconds,
work counters) fail when the current value exceeds
``value * (1 + tolerance)``; ``higher`` metrics (speedups, counts of
certified pipelines) fail when it drops below ``value * (1 - tolerance)``.
Tolerance resolves most-specific-first: a per-metric ``tolerance``
overrides the baseline file's top-level one, which overrides the
run-wide ``--tolerance`` — deterministic counters are pinned with ``0``,
wall-clock-adjacent ratios get slack sized to their own benchmark's
noise, and the command-line value is only the fallback for baselines
that pin nothing.
Dotted metric names (``verify.speedup``) reach into nested result dicts.

A missing current file, missing metric, or non-numeric value **fails the
gate**: a gate that silently passes when a benchmark disappears guards
nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

__all__ = ["MetricCheck", "compare_baselines", "format_checks"]


@dataclass
class MetricCheck:
    """One gated metric's verdict."""

    bench: str
    metric: str
    direction: str
    baseline: Optional[float]
    limit: Optional[float]
    current: Optional[float]
    ok: bool
    note: str = ""

    def to_dict(self) -> dict:
        return {
            "bench": self.bench,
            "metric": self.metric,
            "direction": self.direction,
            "baseline": self.baseline,
            "limit": self.limit,
            "current": self.current,
            "ok": self.ok,
            "note": self.note,
        }


def _lookup(results: object, dotted: str) -> object:
    value: object = results
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def _check_metric(
    bench: str,
    metric: str,
    specification: dict,
    results: Optional[dict],
    tolerance: float,
) -> MetricCheck:
    direction = specification.get("direction", "lower")
    slack = specification.get("tolerance", tolerance)
    baseline = specification.get("value")
    if direction not in ("lower", "higher") or not isinstance(baseline, (int, float)):
        return MetricCheck(
            bench, metric, str(direction), None, None, None, False,
            "malformed baseline entry (needs numeric 'value' and direction lower|higher)",
        )
    limit = baseline * (1 + slack) if direction == "lower" else baseline * (1 - slack)
    if results is None:
        return MetricCheck(
            bench, metric, direction, float(baseline), limit, None, False,
            f"no BENCH_{bench}.json in the current run",
        )
    current = _lookup(results, metric)
    if isinstance(current, bool) or not isinstance(current, (int, float)):
        return MetricCheck(
            bench, metric, direction, float(baseline), limit, None, False,
            f"metric missing or non-numeric in BENCH_{bench}.json (got {current!r})",
        )
    ok = current <= limit if direction == "lower" else current >= limit
    note = "" if ok else (
        f"regressed: {current:g} {'>' if direction == 'lower' else '<'} "
        f"allowed {limit:g} (baseline {baseline:g}, tolerance {slack:g})"
    )
    return MetricCheck(bench, metric, direction, float(baseline), limit, float(current), ok, note)


def compare_baselines(
    baseline_path: Path, current_dir: Path, tolerance: float
) -> Tuple[List[MetricCheck], bool]:
    """Check every baseline under ``baseline_path`` against ``current_dir``.

    ``baseline_path`` may be one baseline file or a directory of them.
    Returns (per-metric checks, all-ok).
    """
    if baseline_path.is_dir():
        baseline_files = sorted(baseline_path.glob("*.json"))
    elif baseline_path.is_file():
        baseline_files = [baseline_path]
    else:
        return (
            [MetricCheck("-", "-", "-", None, None, None, False,
                         f"baseline path {baseline_path} does not exist")],
            False,
        )
    if not baseline_files:
        return (
            [MetricCheck("-", "-", "-", None, None, None, False,
                         f"no baseline *.json files under {baseline_path}")],
            False,
        )

    checks: List[MetricCheck] = []
    for baseline_file in baseline_files:
        try:
            baseline = json.loads(baseline_file.read_text())
            bench = baseline["bench"]
            metrics = baseline["metrics"]
            file_tolerance = baseline.get("tolerance", tolerance)
            if isinstance(file_tolerance, bool) or not isinstance(file_tolerance, (int, float)) \
                    or file_tolerance < 0:
                raise ValueError(f"top-level tolerance must be a number >= 0, "
                                 f"got {file_tolerance!r}")
        except Exception as exc:
            checks.append(
                MetricCheck(baseline_file.stem, "-", "-", None, None, None, False,
                            f"unreadable baseline {baseline_file}: {exc}")
            )
            continue
        results: Optional[dict] = None
        current_file = current_dir / f"BENCH_{bench}.json"
        if current_file.is_file():
            try:
                results = json.loads(current_file.read_text()).get("results")
            except Exception:
                results = None
        for metric in sorted(metrics):
            checks.append(
                _check_metric(bench, metric, metrics[metric], results, file_tolerance)
            )
    return checks, all(check.ok for check in checks)


def format_checks(checks: List[MetricCheck]) -> str:
    """The per-metric table ``repro bench-compare`` prints."""
    headers = ("bench", "metric", "baseline", "current", "allowed", "status")
    rows = [headers]
    for check in checks:
        comparator = "<=" if check.direction == "lower" else ">="
        rows.append(
            (
                check.bench,
                check.metric,
                "-" if check.baseline is None else f"{check.baseline:g}",
                "-" if check.current is None else f"{check.current:g}",
                "-" if check.limit is None else f"{comparator}{check.limit:g}",
                "ok" if check.ok else "FAIL",
            )
        )
    widths = [max(len(row[column]) for row in rows) for column in range(len(headers))]
    lines = ["  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
             for row in rows]
    lines.insert(1, "  ".join("-" * width for width in widths))
    for check in checks:
        if not check.ok and check.note:
            lines.append(f"  {check.bench}/{check.metric}: {check.note}")
    return "\n".join(lines)
