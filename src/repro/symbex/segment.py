"""Segment summaries: the distilled "essence" of one path through one element.

Step 1 of the verification approach symbolically executes each element in
isolation and keeps, for every feasible segment, its path constraint C and
its symbolic state transformation S (§3 "Pipeline Decomposition").  Those
are exactly the fields of :class:`SegmentSummary`; Step 2 composes them
without ever re-executing the element.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import smt
from ..smt import Term
from .state import HavocRead, PathState, TableWriteRecord


class SegmentOutcome:
    """How a segment ends (mirrors the concrete interpreter's outcomes)."""

    EMIT = "emit"
    DROP = "drop"
    CRASH = "crash"


@dataclass
class SegmentSummary:
    """The reusable summary of one feasible segment of one element.

    Attributes:
        element_name: the element whose program produced this segment.
        index: position of the segment in the element's segment list.
        outcome: emit / drop / crash.
        port: output port for emit segments.
        constraint: path constraint C over the element's symbolic input
            (packet bytes ``in_b*``, metadata ``in_meta_*``, and havoc'd
            table-read variables).
        output_bytes: for emit segments, the symbolic bytes handed to the
            next element (the state transformation S applied to the packet).
        output_metadata: the metadata annotations after the segment.
        instructions: concrete number of IR instructions executed along the
            segment (the latency proxy).
        havoc_reads / table_writes: the mutable-state interactions, used by
            the data-structure (bad-value) analysis.
        crash_message / drop_reason: diagnostics for reports.
    """

    element_name: str
    index: int
    outcome: str
    constraint: Term
    port: Optional[int] = None
    output_bytes: Tuple[Term, ...] = ()
    output_metadata: Dict[str, Term] = field(default_factory=dict)
    metadata_reads: Dict[str, Term] = field(default_factory=dict)
    instructions: int = 0
    havoc_reads: Tuple[HavocRead, ...] = ()
    table_writes: Tuple[TableWriteRecord, ...] = ()
    crash_message: str = ""
    drop_reason: str = ""

    @property
    def crashes(self) -> bool:
        return self.outcome == SegmentOutcome.CRASH

    @property
    def drops(self) -> bool:
        return self.outcome == SegmentOutcome.DROP

    @property
    def emits(self) -> bool:
        return self.outcome == SegmentOutcome.EMIT

    def free_variable_names(self) -> List[str]:
        names = set(self.constraint.free_variables())
        for term in self.output_bytes:
            names.update(term.free_variables())
        for term in self.output_metadata.values():
            names.update(term.free_variables())
        return sorted(names)

    def __repr__(self) -> str:
        detail = {
            SegmentOutcome.EMIT: f"port={self.port}",
            SegmentOutcome.DROP: f"reason={self.drop_reason!r}",
            SegmentOutcome.CRASH: f"message={self.crash_message!r}",
        }[self.outcome]
        return (
            f"SegmentSummary({self.element_name}#{self.index}, {self.outcome}, {detail}, "
            f"instructions={self.instructions})"
        )

    # -- transport ----------------------------------------------------------------

    def to_dict(self, terms) -> Dict:
        """Encode the segment with every term replaced by a slot reference.

        ``terms`` is a term-table encoder exposing ``ref(term) -> int``
        (see :mod:`repro.orchestrator.serialize`); the segment itself
        stays a plain JSON-able dict so summaries can cross process and
        filesystem boundaries without pickling hash-consed terms.
        """
        return {
            "element_name": self.element_name,
            "index": self.index,
            "outcome": self.outcome,
            "port": self.port,
            "constraint": terms.ref(self.constraint),
            "output_bytes": [terms.ref(term) for term in self.output_bytes],
            "output_metadata": {key: terms.ref(value) for key, value in self.output_metadata.items()},
            "metadata_reads": {key: terms.ref(value) for key, value in self.metadata_reads.items()},
            "instructions": self.instructions,
            "havoc_reads": [
                [havoc.table, terms.ref(havoc.key), havoc.value_var, havoc.found_var]
                for havoc in self.havoc_reads
            ],
            "table_writes": [
                [write.table, terms.ref(write.key), terms.ref(write.value)]
                for write in self.table_writes
            ],
            "crash_message": self.crash_message,
            "drop_reason": self.drop_reason,
        }

    @classmethod
    def from_dict(cls, data: Dict, terms) -> "SegmentSummary":
        """Rebuild a segment from :meth:`to_dict` output.

        ``terms`` is the matching decoder exposing ``term(slot) -> Term``;
        decoded terms are re-interned, so structural sharing between
        segments of one element survives the round trip.
        """
        return cls(
            element_name=data["element_name"],
            index=data["index"],
            outcome=data["outcome"],
            constraint=terms.term(data["constraint"]),
            port=data["port"],
            output_bytes=tuple(terms.term(slot) for slot in data["output_bytes"]),
            output_metadata={key: terms.term(slot) for key, slot in data["output_metadata"].items()},
            metadata_reads={key: terms.term(slot) for key, slot in data["metadata_reads"].items()},
            instructions=data["instructions"],
            havoc_reads=tuple(
                HavocRead(table=table, key=terms.term(key), value_var=value_var, found_var=found_var)
                for table, key, value_var, found_var in data["havoc_reads"]
            ),
            table_writes=tuple(
                TableWriteRecord(table=table, key=terms.term(key), value=terms.term(value))
                for table, key, value in data["table_writes"]
            ),
            crash_message=data["crash_message"],
            drop_reason=data["drop_reason"],
        )


def summarize_path(element_name: str, index: int, state: PathState) -> SegmentSummary:
    """Turn a terminated :class:`PathState` into a :class:`SegmentSummary`."""
    if not state.terminated or state.outcome is None:
        raise ValueError("cannot summarise a path that has not terminated")
    output_bytes: Tuple[Term, ...] = ()
    if state.outcome == SegmentOutcome.EMIT:
        output_bytes = tuple(smt.simplify(term) for term in state.packet.bytes)
    return SegmentSummary(
        element_name=element_name,
        index=index,
        outcome=state.outcome,
        constraint=state.path_constraint(),
        port=state.port,
        output_bytes=output_bytes,
        output_metadata={key: smt.simplify(value) for key, value in state.metadata.items()},
        metadata_reads=dict(state.metadata_reads),
        instructions=state.instructions,
        havoc_reads=tuple(state.havoc_reads),
        table_writes=tuple(state.table_writes),
        crash_message=state.crash_message,
        drop_reason=state.drop_reason,
    )


@dataclass
class ElementSummary:
    """All feasible segments of one element for one input-packet length."""

    element_name: str
    configuration_key: str
    input_length: int
    segments: List[SegmentSummary] = field(default_factory=list)
    paths_explored: int = 0
    #: Merge-pass accounting (:mod:`repro.symbex.merge`).  Structural
    #: facts about how this summary was produced — like
    #: ``paths_explored`` they serialize with it (the merge mode is part
    #: of the summary store key, so a loaded summary's counts describe
    #: the exploration that built it, not the run that loaded it).
    merge_mode: str = "off"
    paths_merged: int = 0
    ites_introduced: int = 0
    merge_rejected: int = 0
    solver_checks: int = 0
    #: Whether the engine used the incremental assumption-based solver core.
    incremental: bool = False
    #: Feasibility queries answered from the interned-constraint-set memo.
    feasibility_memo_hits: int = 0
    #: Times the CDCL core ran for this summary, and slice questions the
    #: query cache answered without it.  Runtime accounting, deliberately
    #: *not* serialized: a store-loaded summary did no solver work in the
    #: run that loaded it, so these read 0 after a round trip.
    sat_core_calls: int = 0
    qcache_hits: int = 0
    #: Set by the first verifier that folds the two counters above into a
    #: report, so a summary shared across properties and pipelines (the
    #: cache hands out one object) contributes its work exactly once per
    #: process.  Not serialized, like the counters it guards.
    work_counters_reported: bool = False
    elapsed_seconds: float = 0.0

    def segments_with_outcome(self, outcome: str) -> List[SegmentSummary]:
        return [segment for segment in self.segments if segment.outcome == outcome]

    @property
    def crash_segments(self) -> List[SegmentSummary]:
        return self.segments_with_outcome(SegmentOutcome.CRASH)

    @property
    def emit_segments(self) -> List[SegmentSummary]:
        return self.segments_with_outcome(SegmentOutcome.EMIT)

    @property
    def drop_segments(self) -> List[SegmentSummary]:
        return self.segments_with_outcome(SegmentOutcome.DROP)

    @property
    def max_instructions(self) -> int:
        return max((segment.instructions for segment in self.segments), default=0)

    def emit_segments_for_port(self, port: int) -> List[SegmentSummary]:
        return [segment for segment in self.emit_segments if segment.port == port]

    def __repr__(self) -> str:
        return (
            f"ElementSummary({self.element_name}, length={self.input_length}, "
            f"{len(self.segments)} segments: {len(self.emit_segments)} emit / "
            f"{len(self.drop_segments)} drop / {len(self.crash_segments)} crash)"
        )

    # -- transport ----------------------------------------------------------------

    def to_dict(self, terms) -> Dict:
        """Encode the summary against a term-table encoder (see ``SegmentSummary.to_dict``)."""
        return {
            "element_name": self.element_name,
            "configuration_key": self.configuration_key,
            "input_length": self.input_length,
            "segments": [segment.to_dict(terms) for segment in self.segments],
            "paths_explored": self.paths_explored,
            "merge_mode": self.merge_mode,
            "paths_merged": self.paths_merged,
            "ites_introduced": self.ites_introduced,
            "merge_rejected": self.merge_rejected,
            "solver_checks": self.solver_checks,
            "incremental": self.incremental,
            "feasibility_memo_hits": self.feasibility_memo_hits,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict, terms) -> "ElementSummary":
        return cls(
            element_name=data["element_name"],
            configuration_key=data["configuration_key"],
            input_length=data["input_length"],
            segments=[SegmentSummary.from_dict(segment, terms) for segment in data["segments"]],
            paths_explored=data["paths_explored"],
            merge_mode=data.get("merge_mode", "off"),
            paths_merged=data.get("paths_merged", 0),
            ites_introduced=data.get("ites_introduced", 0),
            merge_rejected=data.get("merge_rejected", 0),
            solver_checks=data["solver_checks"],
            incremental=data["incremental"],
            feasibility_memo_hits=data["feasibility_memo_hits"],
            elapsed_seconds=data["elapsed_seconds"],
        )
