"""Symbolic packets and per-path execution state."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import smt
from ..smt import Term

#: Canonical prefix of the symbolic input-packet byte variables: ``in_b0``, ``in_b1``, ...
INPUT_BYTE_PREFIX = "in_b"
#: Canonical prefix of symbolic input-metadata variables: ``in_meta_<key>``.
INPUT_META_PREFIX = "in_meta_"
#: Canonical prefix of havoc'd table-read variables.
HAVOC_PREFIX = "havoc"


#: Bytes per copy-on-write page.  Small enough that a single store near a
#: fork copies one page, large enough that page bookkeeping stays cheap.
PAGE_BYTES = 32


class SymbolicPacket:
    """A packet whose content is symbolic: one 8-bit term per byte.

    The length is concrete (verification runs are per input length, as
    discussed in DESIGN.md); the *content* is entirely unconstrained,
    which is the paper's "the input is a symbolic bit vector".

    Storage is paged copy-on-write: :meth:`copy` (the ``PathState.fork``
    workhorse — every branch calls it) shares the page lists of both
    sides and only :meth:`set_byte` / :meth:`store` pays for a private
    page, so a fork costs O(pages) pointer copies instead of O(bytes)
    term copies.  Reads go through :meth:`byte` or the materializing
    :attr:`bytes` view.
    """

    def __init__(self, byte_terms: List[Term]) -> None:
        self._assign(list(byte_terms))

    def _assign(self, terms: List[Term]) -> None:
        self._length = len(terms)
        self._pages: List[List[Term]] = [
            terms[start : start + PAGE_BYTES] for start in range(0, len(terms), PAGE_BYTES)
        ]
        self._shared: List[bool] = [False] * len(self._pages)

    @classmethod
    def fresh(cls, length: int, prefix: str = INPUT_BYTE_PREFIX) -> "SymbolicPacket":
        """A packet of ``length`` fully symbolic bytes named ``<prefix><i>``."""
        return cls([smt.BitVec(f"{prefix}{i}", 8) for i in range(length)])

    @classmethod
    def concrete(cls, data: bytes) -> "SymbolicPacket":
        """A packet with fully concrete content (used for replay/tests)."""
        return cls([smt.BitVecVal(b, 8) for b in data])

    def __len__(self) -> int:
        return self._length

    @property
    def bytes(self) -> List[Term]:
        """The byte terms as a flat list (a fresh read-only snapshot)."""
        flat: List[Term] = []
        for page in self._pages:
            flat.extend(page)
        return flat

    def copy(self) -> "SymbolicPacket":
        clone = SymbolicPacket.__new__(SymbolicPacket)
        clone._length = self._length
        clone._pages = list(self._pages)
        # Both sides now reference the same page objects, so both must
        # copy before their next write.
        clone._shared = [True] * len(self._pages)
        self._shared = [True] * len(self._pages)
        return clone

    def byte(self, index: int) -> Term:
        return self._pages[index // PAGE_BYTES][index % PAGE_BYTES]

    def set_byte(self, index: int, term: Term) -> None:
        page = index // PAGE_BYTES
        if self._shared[page]:
            self._pages[page] = list(self._pages[page])
            self._shared[page] = False
        self._pages[page][index % PAGE_BYTES] = term

    def load(self, offset: int, nbytes: int) -> Term:
        """Big-endian read of ``nbytes`` at a concrete ``offset``, zero-extended to 64 bits."""
        chunks = [
            self.byte(offset + index)
            for index in range(nbytes)
            if 0 <= offset + index < self._length
        ]
        value = smt.Concat(*chunks) if len(chunks) > 1 else chunks[0]
        return smt.ZeroExt(64 - 8 * nbytes, value)

    def store(self, offset: int, nbytes: int, value: Term) -> None:
        """Big-endian write of the low ``nbytes`` of a 64-bit ``value`` at a concrete offset."""
        for index in range(nbytes):
            shift = 8 * (nbytes - 1 - index)
            self.set_byte(offset + index, smt.Extract(shift + 7, shift, value))

    def push_head(self, byte_terms: List[Term]) -> None:
        """Prepend terms (header push); rebuilds the page table."""
        self._assign(list(byte_terms) + self.bytes)

    def pull_head(self, nbytes: int) -> None:
        """Strip the first ``nbytes`` bytes (header pull); rebuilds the page table."""
        self._assign(self.bytes[nbytes:])

    def select(self, offset_term: Term, length_guard: int) -> Term:
        """Read one byte at a *symbolic* offset as an if-then-else over positions."""
        result = smt.BitVecVal(0, 8)
        for index in range(min(self._length, length_guard)):
            result = smt.If(
                smt.Eq(offset_term, smt.BitVecVal(index, 64)), self.byte(index), result
            )
        return result


@dataclass(frozen=True)
class HavocRead:
    """Record of one havoc'd table read (the key/value-store model of §3).

    ``value_var`` / ``found_var`` are the names of the fresh symbolic
    variables introduced for the read; the bad-value analysis later asks
    whether the values that make a path violate the property could ever
    have been written.
    """

    table: str
    key: Term
    value_var: str
    found_var: str


@dataclass(frozen=True)
class TableWriteRecord:
    """Record of a table write performed along a path."""

    table: str
    key: Term
    value: Term


@dataclass
class PathState:
    """The symbolic state of one execution path through an element program."""

    packet: SymbolicPacket
    constraints: List[Term] = field(default_factory=list)
    registers: Dict[str, Term] = field(default_factory=dict)
    metadata: Dict[str, Term] = field(default_factory=dict)
    metadata_reads: Dict[str, Term] = field(default_factory=dict)
    havoc_reads: List[HavocRead] = field(default_factory=list)
    table_writes: List[TableWriteRecord] = field(default_factory=list)
    instructions: int = 0
    terminated: bool = False
    outcome: Optional[str] = None
    port: Optional[int] = None
    crash_message: str = ""
    drop_reason: str = ""

    def fork(self) -> "PathState":
        """An independent copy of this state (for branch exploration)."""
        return PathState(
            packet=self.packet.copy(),
            constraints=list(self.constraints),
            registers=dict(self.registers),
            metadata=dict(self.metadata),
            metadata_reads=dict(self.metadata_reads),
            havoc_reads=list(self.havoc_reads),
            table_writes=list(self.table_writes),
            instructions=self.instructions,
            terminated=self.terminated,
            outcome=self.outcome,
            port=self.port,
            crash_message=self.crash_message,
            drop_reason=self.drop_reason,
        )

    def add_constraint(self, constraint: Term) -> None:
        # Constraints are interned on the way in: the path's prefix is then a
        # sequence of canonical terms, so the engine's incremental solver
        # context can align scopes and memoize feasibility by integer uid.
        self.constraints.append(smt.intern_term(constraint))

    def path_constraint(self) -> Term:
        return smt.simplify(smt.conjoin(self.constraints)) if self.constraints else smt.TRUE

    def count(self, amount: int) -> None:
        self.instructions += amount

    def terminate(self, outcome: str, **details) -> None:
        self.terminated = True
        self.outcome = outcome
        self.port = details.get("port")
        self.crash_message = details.get("crash_message", "")
        self.drop_reason = details.get("drop_reason", "")
