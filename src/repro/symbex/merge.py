"""Ite-lifting state merging at branch joins.

Without merging the engine's path count is exponential in branch depth:
``k`` independent header branches produce ``2^k`` sibling paths whose
states differ only in a handful of values.  This module collapses such
siblings after both arms of an ``If`` complete: two states that agree on
*control outcome* (alive/terminated the same way, same packet length,
same register/metadata key sets, same havoc and table-write structure)
are folded into one state by lifting every differing packet byte,
register, metadata slot and table-write term into
``ite(cond, then_val, else_val)`` and disjoining their path constraints.

Soundness of the ite condition.  Two sibling paths first diverge at a
*complementary* branch pair: the engine appends ``holds`` to one arm and
``simplify(Not(holds))`` to the other, unconditionally.  Under the merged
path constraint ``A ∨ B`` the first divergent constraint ``h`` of arm A
is therefore equivalent to "arm A was taken" (B carries ``¬h`` as a
conjunct), so ``h`` alone is a valid selector — the merge verifies the
complementarity *structurally* (uid of the interned negation) and rejects
the pair otherwise, never calling a solver.

The common special case — both suffixes are exactly the complementary
pair — collapses to no residual disjunction at all: the branch condition
survives only inside the lifted ite values, which is the ``2^k -> 1``
reduction of the paper's path-counting argument.

``instructions`` is lifted to the *maximum* of the two arms: a merged
segment's instruction count is an upper bound, never an undercount, so
``BoundedInstructions`` proofs stay sound (see ARCHITECTURE.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .. import smt
from ..smt import Term
from .state import PathState, SymbolicPacket, TableWriteRecord


class MergeMode:
    """Path-merging policies (``SymbexOptions.merge``)."""

    #: Never merge — the differential-testing reference.
    OFF = "off"
    #: Merge alive sibling states only, and only when the number of ite
    #: terms introduced stays below the configured threshold (so solver
    #: queries don't silently get harder).  The default.
    CONSERVATIVE = "conservative"
    #: Additionally merge terminated states that agree on their outcome
    #: details, with no ite budget.
    AGGRESSIVE = "aggressive"

    ALL = (OFF, CONSERVATIVE, AGGRESSIVE)


@dataclass
class MergeCounters:
    """Work counters of one engine's merge pass (threaded to summaries)."""

    paths_merged: int = 0
    ites_introduced: int = 0
    merge_rejected: int = 0


def _signature(state: PathState, mode: str) -> Optional[Tuple]:
    """Grouping key of the control outcome; ``None`` marks an unmergeable state."""
    if state.terminated:
        if mode != MergeMode.AGGRESSIVE:
            return None
        head: Tuple = (
            "done",
            state.outcome,
            state.port,
            state.crash_message,
            state.drop_reason,
        )
    else:
        head = ("alive",)
    return head + (
        len(state.packet),
        tuple(sorted(state.registers)),
        tuple(sorted(state.metadata)),
        tuple(sorted((key, term.uid) for key, term in state.metadata_reads.items())),
        tuple(
            (read.table, read.key.uid, read.value_var, read.found_var)
            for read in state.havoc_reads
        ),
        tuple(write.table for write in state.table_writes),
    )


def _divergence(a: PathState, b: PathState) -> Optional[Tuple[int, Term]]:
    """First constraint index where the two paths split, plus the selector.

    Returns ``None`` unless the divergent constraints are structurally
    complementary (one is the interned simplified negation of the other)
    — the condition under which the selector is sound without a solver.
    """
    prefix = 0
    for left, right in zip(a.constraints, b.constraints):
        if left.uid != right.uid:
            break
        prefix += 1
    if prefix >= len(a.constraints) or prefix >= len(b.constraints):
        return None
    left, right = a.constraints[prefix], b.constraints[prefix]
    if (
        smt.intern_term(smt.simplify(smt.Not(left))).uid != right.uid
        and smt.intern_term(smt.simplify(smt.Not(right))).uid != left.uid
    ):
        return None
    return prefix, left


def _count_ites(a: PathState, b: PathState) -> int:
    """Number of ite terms a merge of ``a`` and ``b`` would introduce."""
    count = sum(
        1
        for byte_a, byte_b in zip(a.packet.bytes, b.packet.bytes)
        if byte_a.uid != byte_b.uid
    )
    count += sum(1 for key in a.registers if a.registers[key].uid != b.registers[key].uid)
    count += sum(1 for key in a.metadata if a.metadata[key].uid != b.metadata[key].uid)
    for write_a, write_b in zip(a.table_writes, b.table_writes):
        count += 1 if write_a.key.uid != write_b.key.uid else 0
        count += 1 if write_a.value.uid != write_b.value.uid else 0
    return count


def _lift(cond: Term, then_value: Term, else_value: Term) -> Term:
    if then_value.uid == else_value.uid:
        return then_value
    return smt.intern_term(smt.simplify(smt.If(cond, then_value, else_value)))


def _try_merge(
    a: PathState, b: PathState, mode: str, max_ites: int, counters: MergeCounters
) -> Optional[PathState]:
    """Fold ``b`` into ``a`` if sound and within budget; ``None`` otherwise.

    The caller has already checked the two states share a signature, so
    every lifted container is structurally aligned.
    """
    split = _divergence(a, b)
    if split is None:
        counters.merge_rejected += 1
        return None
    prefix, cond = split
    ites = _count_ites(a, b)
    if mode == MergeMode.CONSERVATIVE and ites > max_ites:
        counters.merge_rejected += 1
        return None

    suffix_a = a.constraints[prefix + 1 :]
    suffix_b = b.constraints[prefix + 1 :]
    constraints = a.constraints[:prefix]
    if suffix_a or suffix_b:
        # General case: keep each arm's full suffix (divergent constraint
        # included) under a disjunction.  ``cond`` stays a sound selector
        # because arm B's suffix still carries ``¬cond``.
        arm_a = smt.conjoin(a.constraints[prefix:])
        arm_b = smt.conjoin(b.constraints[prefix:])
        disjunct = smt.intern_term(smt.simplify(smt.Or(arm_a, arm_b)))
        if not disjunct.is_true():
            constraints = constraints + [disjunct]
    # else: the suffixes are exactly the complementary pair — their
    # disjunction is valid, so the branch survives only inside the ites.

    merged = PathState(
        packet=SymbolicPacket(
            [
                _lift(cond, byte_a, byte_b)
                for byte_a, byte_b in zip(a.packet.bytes, b.packet.bytes)
            ]
        ),
        constraints=constraints,
        registers={
            key: _lift(cond, a.registers[key], b.registers[key]) for key in a.registers
        },
        metadata={
            key: _lift(cond, a.metadata[key], b.metadata[key]) for key in a.metadata
        },
        metadata_reads=dict(a.metadata_reads),
        havoc_reads=list(a.havoc_reads),
        table_writes=[
            TableWriteRecord(
                table=write_a.table,
                key=_lift(cond, write_a.key, write_b.key),
                value=_lift(cond, write_a.value, write_b.value),
            )
            for write_a, write_b in zip(a.table_writes, b.table_writes)
        ],
        instructions=max(a.instructions, b.instructions),
        terminated=a.terminated,
        outcome=a.outcome,
        port=a.port,
        crash_message=a.crash_message,
        drop_reason=a.drop_reason,
    )
    counters.paths_merged += 1
    counters.ites_introduced += ites
    return merged


def merge_states(
    states: List[PathState],
    mode: str,
    max_ites: int,
    counters: MergeCounters,
) -> List[PathState]:
    """Greedy pairwise fold of mergeable sibling states, order-preserving.

    Each state is folded into the first earlier survivor it can soundly
    merge with; a merged state stays a candidate, so a chain of eligible
    siblings collapses to one state in a single pass over the join.
    """
    if mode == MergeMode.OFF or len(states) < 2:
        return states
    survivors: List[PathState] = []
    signatures: List[Optional[Tuple]] = []
    for state in states:
        signature = _signature(state, mode)
        folded = False
        if signature is not None:
            for index, candidate in enumerate(survivors):
                if signatures[index] != signature:
                    continue
                merged = _try_merge(candidate, state, mode, max_ites, counters)
                if merged is not None:
                    survivors[index] = merged
                    folded = True
                    break
        if not folded:
            survivors.append(state)
            signatures.append(signature)
    return survivors
