"""The symbolic execution engine over element IR programs.

Mirrors :class:`repro.ir.interpreter.Interpreter`, but every value is an
SMT term and every branch forks the path.  The engine plays the role S2E
plays in the paper: enumerate all feasible segments of an element under a
fully symbolic input packet and collect each segment's path constraint and
symbolic state.

Crash behaviours are modelled explicitly: failed assertions, out-of-bounds
packet accesses, division by zero, and loop-bound overruns each produce a
crash segment guarded by the condition that triggers them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import smt
from ..obs.trace import clock, tracer
from ..smt import Term
from ..ir.exprs import (
    BinOp,
    BinaryOperator,
    Const,
    Expr,
    LoadField,
    LoadMeta,
    PacketLength,
    Reg,
    UnOp,
    UnaryOperator,
)
from ..ir.program import ElementProgram
from ..ir.stmts import (
    Assert,
    Assign,
    Drop,
    Emit,
    If,
    Nop,
    PullHead,
    PushHead,
    SetMeta,
    Stmt,
    StoreField,
    TableRead,
    TableWrite,
    While,
)
from .errors import PathExplosionError, UnsupportedProgramError
from .merge import MergeCounters, MergeMode, merge_states
from .segment import ElementSummary, SegmentOutcome, summarize_path
from .state import (
    HAVOC_PREFIX,
    INPUT_META_PREFIX,
    HavocRead,
    PathState,
    SymbolicPacket,
    TableWriteRecord,
)


class StaticTableMode:
    """How static tables are treated during symbolic execution."""

    #: Encode the actual table contents (configuration-specific proofs).
    CONCRETE = "concrete"
    #: Havoc reads (proofs that hold for *any* table configuration).
    HAVOC = "havoc"


@dataclass
class SymbexOptions:
    """Budgets and policies for one symbolic execution run."""

    max_paths: int = 4096
    max_seconds: Optional[float] = None
    static_table_mode: str = StaticTableMode.CONCRETE
    solver_max_conflicts: Optional[int] = 200_000
    prune_infeasible_branches: bool = True
    #: Use the incremental assumption-based solver core: one persistent
    #: context per engine, aligned to each path's constraint prefix, with a
    #: feasibility memo keyed on interned constraint-set ids.  Scratch mode
    #: (``False``) re-solves every query from nothing and is kept for
    #: differential testing.
    incremental: bool = True
    #: Route feasibility queries through the query-optimization layer:
    #: independence slicing plus the tiered verdict/model/unsat-core cache
    #: (:mod:`repro.smt.qcache`).  ``False`` keeps the plain incremental
    #: path for differential testing and benchmarking.
    query_opt: bool = True
    #: Directory of the persistent L3 query-cache tier (``None`` keeps the
    #: in-memory tiers only).  Excluded from summary/verdict store keys:
    #: the cache changes how queries are answered, never what they answer.
    query_cache_dir: Optional[str] = None
    #: SAT core behind every solver this run constructs
    #: (:mod:`repro.smt.backend`): ``array`` (flat-arena CDCL, default),
    #: ``reference`` (the from-scratch oracle), or ``external`` (installed
    #: DIMACS solver).  Backends are differentially tested to agree, so —
    #: like the caches — this is excluded from summary/verdict store keys.
    sat_backend: Optional[str] = None
    #: Enable span tracing (:mod:`repro.obs`) in whatever process runs the
    #: engine — how fork workers learn the parent is tracing.  Purely
    #: observational, so it is excluded from summary/verdict store keys.
    trace: bool = False
    #: Path-merging policy at branch joins (:mod:`repro.symbex.merge`):
    #: ``off`` never merges (the differential-testing reference),
    #: ``conservative`` (default) merges alive siblings within the ite
    #: budget below, ``aggressive`` also merges matching terminated
    #: states with no budget.  Merging changes summary *content* (ite
    #: lifting, max-lifted instruction counts) but never verdicts, so it
    #: is part of the summary store key and not the verdict key.
    merge: str = MergeMode.CONSERVATIVE
    #: ``conservative`` rejects a pairwise merge introducing more than
    #: this many ite terms (solver queries would silently get harder).
    merge_max_ites: int = 64


class SymbolicEngine:
    """Symbolically executes one element program on a symbolic packet."""

    def __init__(
        self,
        options: Optional[SymbexOptions] = None,
        solver: Optional[smt.Solver] = None,
        query_cache: Optional[smt.QueryCache] = None,
    ) -> None:
        """``query_cache`` shares one slicing/verdict cache across engines
        (the :class:`repro.verify.cache.SummaryCache` passes its own);
        standalone engines build one from the options."""
        self.options = options or SymbexOptions()
        if self.options.trace:
            # Idempotent: how a fork worker (whose parent set the flag on
            # the shipped options) turns tracing on in its own process.
            from ..obs.trace import enable

            enable()
        self.solver = solver if solver is not None else smt.Solver(
            max_conflicts=self.options.solver_max_conflicts,
            sat_backend=self.options.sat_backend,
        )
        # Injecting an explicit scratch solver opts out of incremental mode:
        # callers doing so want every query to go through that instance.
        if self.options.incremental and solver is None:
            if query_cache is None:
                query_cache = smt.build_query_cache(
                    self.options.query_opt, self.options.query_cache_dir
                )
            self.checker: Optional[smt.AssumptionChecker] = smt.AssumptionChecker(
                max_conflicts=self.options.solver_max_conflicts,
                query_cache=query_cache,
                sat_backend=self.options.sat_backend,
            )
        else:
            self.checker = None
        if self.options.merge not in MergeMode.ALL:
            raise ValueError(
                f"unknown merge mode {self.options.merge!r}; expected one of {MergeMode.ALL}"
            )
        self.solver_checks = 0
        self.merge_counters = MergeCounters()
        self._havoc_counter = 0
        self._deadline: Optional[float] = None
        self._element_name = ""

    # -- public API ----------------------------------------------------------------------

    def execute_program(
        self,
        program: ElementProgram,
        packet: SymbolicPacket,
        tables: Optional[Dict[str, object]] = None,
        element_name: Optional[str] = None,
        initial_constraints: Sequence[Term] = (),
        initial_metadata: Optional[Dict[str, Term]] = None,
    ) -> List[PathState]:
        """Explore all feasible paths of ``program`` and return their terminal states.

        ``initial_constraints`` and ``initial_metadata`` seed the root path
        state; the monolithic whole-pipeline verifier uses them to carry the
        upstream path condition into the next element.
        """
        if self.options.max_seconds is not None and self._deadline is None:
            self._deadline = clock() + self.options.max_seconds
        self._tables = tables or {}
        self._program = program
        self._element_name = element_name or program.name
        root = PathState(packet=packet)
        root.constraints.extend(initial_constraints)
        if initial_metadata:
            root.metadata.update(initial_metadata)
        states = self._run_block(program.body, [root])
        finished: List[PathState] = []
        for state in states:
            if not state.terminated:
                # Falling off the end of the program emits on port 0 (same
                # convention as the concrete interpreter).
                state.terminate(SegmentOutcome.EMIT, port=0)
            if self._is_feasible(state):
                finished.append(state)
        return finished

    def summarize_element(
        self,
        program: ElementProgram,
        input_length: int,
        tables: Optional[Dict[str, object]] = None,
        element_name: Optional[str] = None,
        configuration_key: str = "",
    ) -> ElementSummary:
        """Step-1 primitive: symbex an element on a fresh symbolic packet and summarise it."""
        started = clock()
        query_cache = self.checker.query_cache if self.checker is not None else None
        qcache_hits_before = query_cache.statistics.hits if query_cache is not None else 0
        sat_core_before = (
            self.checker.statistics.sat_core_calls
            if self.checker is not None
            else self.solver.statistics.sat_core_calls
        )
        merged_before = self.merge_counters.paths_merged
        ites_before = self.merge_counters.ites_introduced
        rejected_before = self.merge_counters.merge_rejected
        name = element_name or program.name
        packet = SymbolicPacket.fresh(input_length)
        states = self.execute_program(program, packet, tables=tables, element_name=name)
        summary = ElementSummary(
            element_name=name,
            configuration_key=configuration_key or name,
            input_length=input_length,
        )
        for index, state in enumerate(states):
            summary.segments.append(summarize_path(name, index, state))
        summary.paths_explored = len(states)
        summary.solver_checks = self.solver_checks
        summary.incremental = self.checker is not None
        summary.feasibility_memo_hits = self.checker.memo_hits if self.checker else 0
        summary.sat_core_calls = (
            self.checker.statistics.sat_core_calls
            if self.checker is not None
            else self.solver.statistics.sat_core_calls
        ) - sat_core_before
        summary.qcache_hits = (
            query_cache.statistics.hits - qcache_hits_before
            if query_cache is not None
            else 0
        )
        summary.merge_mode = self.options.merge
        summary.paths_merged = self.merge_counters.paths_merged - merged_before
        summary.ites_introduced = self.merge_counters.ites_introduced - ites_before
        summary.merge_rejected = self.merge_counters.merge_rejected - rejected_before
        summary.elapsed_seconds = clock() - started
        trace = tracer()
        if trace.enabled:
            trace.record_span(
                "symbex.element",
                "symbex",
                started,
                started + summary.elapsed_seconds,
                element=name,
                input_length=input_length,
                segments=len(summary.segments),
                paths=summary.paths_explored,
                sat_core_calls=summary.sat_core_calls,
                paths_merged=summary.paths_merged,
            )
        return summary

    # -- block / statement execution -------------------------------------------------------

    def _run_block(self, block: Sequence[Stmt], states: List[PathState]) -> List[PathState]:
        current = states
        for stmt in block:
            next_states: List[PathState] = []
            for state in current:
                if state.terminated:
                    next_states.append(state)
                    continue
                next_states.extend(self._run_stmt(stmt, state))
            current = next_states
            self._check_budget(current, stmt)
        return current

    def _explode(self, message: str) -> PathExplosionError:
        """Build (and trace) a budget-explosion error attributed to the element."""
        trace = tracer()
        if trace.enabled:
            trace.event(
                "symbex.explosion", "symbex", element=self._element_name, detail=message
            )
        return PathExplosionError(message, element=self._element_name)

    def _check_budget(self, states: List[PathState], stmt: Optional[Stmt] = None) -> None:
        if len(states) > self.options.max_paths:
            where = f" in element {self._element_name!r}" if self._element_name else ""
            if stmt is not None:
                loop_id = getattr(stmt, "loop_id", None)
                block = type(stmt).__name__ + (f" {loop_id!r}" if loop_id else "")
                where += f" while executing {block}"
            raise self._explode(
                f"path budget of {self.options.max_paths} paths exceeded "
                f"({len(states)} live paths){where}"
            )
        if self._deadline is not None and clock() > self._deadline:
            where = f" in element {self._element_name!r}" if self._element_name else ""
            raise self._explode(
                f"time budget of {self.options.max_seconds} seconds exceeded{where}"
            )

    def _run_stmt(self, stmt: Stmt, state: PathState) -> List[PathState]:
        state.count(1)
        crash_forks: List[PathState] = []

        if isinstance(stmt, Assign):
            value = self._eval(stmt.expr, state, crash_forks)
            state.registers[stmt.dst] = smt.simplify(value)
            return crash_forks + [state]

        if isinstance(stmt, StoreField):
            offset = self._eval(stmt.offset, state, crash_forks)
            value = self._eval(stmt.value, state, crash_forks)
            survived = self._bounds_check(state, crash_forks, offset, stmt.nbytes, "write")
            if survived:
                self._store(state, offset, stmt.nbytes, value)
            return crash_forks + ([state] if survived else [])

        if isinstance(stmt, SetMeta):
            value = self._eval(stmt.value, state, crash_forks)
            state.metadata[stmt.key] = smt.simplify(value)
            return crash_forks + [state]

        if isinstance(stmt, If):
            condition = self._eval(stmt.cond, state, crash_forks)
            return crash_forks + self._fork_if(stmt, condition, state)

        if isinstance(stmt, While):
            return crash_forks + self._run_while(stmt, state)

        if isinstance(stmt, Assert):
            condition = self._eval(stmt.cond, state, crash_forks)
            holds = self._as_condition(condition)
            fails = smt.simplify(smt.Not(holds))
            if not fails.is_false() and self._is_feasible(state, fails):
                crash_state = state.fork()
                crash_state.add_constraint(fails)
                crash_state.terminate(SegmentOutcome.CRASH, crash_message=stmt.message)
                crash_forks.append(crash_state)
            if fails.is_true():
                return crash_forks
            state.add_constraint(holds)
            return crash_forks + [state]

        if isinstance(stmt, Emit):
            state.terminate(SegmentOutcome.EMIT, port=stmt.port)
            return [state]

        if isinstance(stmt, Drop):
            state.terminate(SegmentOutcome.DROP, drop_reason=stmt.reason)
            return [state]

        if isinstance(stmt, PushHead):
            state.packet.push_head([smt.BitVecVal(0, 8) for _ in range(stmt.nbytes)])
            return [state]

        if isinstance(stmt, PullHead):
            if stmt.nbytes > len(state.packet):
                state.terminate(
                    SegmentOutcome.CRASH,
                    crash_message=(
                        f"pull of {stmt.nbytes} bytes from a {len(state.packet)}-byte packet"
                    ),
                )
                return [state]
            state.packet.pull_head(stmt.nbytes)
            return [state]

        if isinstance(stmt, TableRead):
            key = self._eval(stmt.key, state, crash_forks)
            value, found = self._table_read(stmt.table, key, state)
            state.registers[stmt.dst_value] = value
            state.registers[stmt.dst_found] = found
            return crash_forks + [state]

        if isinstance(stmt, TableWrite):
            key = self._eval(stmt.key, state, crash_forks)
            value = self._eval(stmt.value, state, crash_forks)
            state.table_writes.append(
                TableWriteRecord(table=stmt.table, key=smt.simplify(key), value=smt.simplify(value))
            )
            return crash_forks + [state]

        if isinstance(stmt, Nop):
            return [state]

        raise UnsupportedProgramError(f"cannot symbolically execute {type(stmt).__name__}")

    # -- control flow ------------------------------------------------------------------------

    def _fork_if(self, stmt: If, condition: Term, state: PathState) -> List[PathState]:
        holds = self._as_condition(condition)
        fails = smt.simplify(smt.Not(holds))

        results: List[PathState] = []
        take_then = not holds.is_false() and (
            not self.options.prune_infeasible_branches or self._is_feasible(state, holds)
        )
        take_else = not fails.is_false() and (
            not self.options.prune_infeasible_branches or self._is_feasible(state, fails)
        )

        if take_then and take_else:
            then_state = state.fork()
            then_state.add_constraint(holds)
            results.extend(self._run_block(stmt.then, [then_state]))
            else_state = state
            else_state.add_constraint(fails)
            results.extend(self._run_block(stmt.orelse, [else_state]))
            results = self._merge_join(results)
        elif take_then:
            if not holds.is_true():
                state.add_constraint(holds)
            results.extend(self._run_block(stmt.then, [state]))
        elif take_else:
            if not fails.is_true():
                state.add_constraint(fails)
            results.extend(self._run_block(stmt.orelse, [state]))
        return results

    def _merge_join(self, states: List[PathState]) -> List[PathState]:
        """Fold mergeable sibling states after both arms of an ``If`` complete."""
        if self.options.merge == MergeMode.OFF or len(states) < 2:
            return states
        started = clock()
        before = len(states)
        merged = merge_states(
            states,
            mode=self.options.merge,
            max_ites=self.options.merge_max_ites,
            counters=self.merge_counters,
        )
        if len(merged) < before:
            trace = tracer()
            if trace.enabled:
                trace.record_span(
                    "symbex.merge",
                    "symbex",
                    started,
                    clock(),
                    element=self._element_name,
                    states_in=before,
                    states_out=len(merged),
                )
        return merged

    def _run_while(self, stmt: While, state: PathState) -> List[PathState]:
        finished: List[PathState] = []
        active: List[PathState] = [state]
        for iteration in range(stmt.max_iterations + 1):
            if not active:
                break
            next_active: List[PathState] = []
            for current in active:
                crash_forks: List[PathState] = []
                condition = self._eval(stmt.cond, current, crash_forks)
                finished.extend(crash_forks)
                holds = self._as_condition(condition)
                fails = smt.simplify(smt.Not(holds))

                can_continue = not holds.is_false() and (
                    not self.options.prune_infeasible_branches
                    or self._is_feasible(current, holds)
                )
                can_exit = not fails.is_false() and (
                    not self.options.prune_infeasible_branches
                    or self._is_feasible(current, fails)
                )

                if can_exit:
                    exit_state = current.fork() if can_continue else current
                    if not fails.is_true():
                        exit_state.add_constraint(fails)
                    finished.append(exit_state)
                if can_continue:
                    loop_state = current
                    if not holds.is_true():
                        loop_state.add_constraint(holds)
                    if iteration >= stmt.max_iterations:
                        loop_state.terminate(
                            SegmentOutcome.CRASH,
                            crash_message=(
                                f"loop {stmt.loop_id} exceeded its bound of "
                                f"{stmt.max_iterations} iterations"
                            ),
                        )
                        finished.append(loop_state)
                    else:
                        for after_body in self._run_block(stmt.body, [loop_state]):
                            if after_body.terminated:
                                finished.append(after_body)
                            else:
                                next_active.append(after_body)
            active = next_active
            self._check_budget(finished + active, stmt)
        return finished

    # -- expression evaluation ------------------------------------------------------------------

    def _eval(self, expr: Expr, state: PathState, crash_forks: List[PathState]) -> Term:
        state.count(expr.node_count())
        return self._eval_inner(expr, state, crash_forks)

    def _eval_inner(self, expr: Expr, state: PathState, crash_forks: List[PathState]) -> Term:
        if isinstance(expr, Const):
            return smt.BitVecVal(expr.value, 64)
        if isinstance(expr, Reg):
            if expr.name not in state.registers:
                raise UnsupportedProgramError(f"read of unassigned register {expr.name!r}")
            return state.registers[expr.name]
        if isinstance(expr, PacketLength):
            return smt.BitVecVal(len(state.packet), 64)
        if isinstance(expr, LoadMeta):
            if expr.key in state.metadata:
                return state.metadata[expr.key]
            if expr.key not in state.metadata_reads:
                state.metadata_reads[expr.key] = smt.BitVec(f"{INPUT_META_PREFIX}{expr.key}", 64)
            return state.metadata_reads[expr.key]
        if isinstance(expr, LoadField):
            offset = self._eval_inner(expr.offset, state, crash_forks)
            survived = self._bounds_check(state, crash_forks, offset, expr.nbytes, "read")
            if not survived:
                # The main path always crashes here; the value is irrelevant.
                return smt.BitVecVal(0, 64)
            return self._load(state, offset, expr.nbytes)
        if isinstance(expr, BinOp):
            left = self._eval_inner(expr.left, state, crash_forks)
            right = self._eval_inner(expr.right, state, crash_forks)
            return self._binop(expr.op, left, right, state, crash_forks)
        if isinstance(expr, UnOp):
            operand = self._eval_inner(expr.operand, state, crash_forks)
            if expr.op == UnaryOperator.NOT:
                return ~operand
            if expr.op == UnaryOperator.NEG:
                return -operand
            if expr.op == UnaryOperator.LOGNOT:
                return smt.If(smt.Eq(operand, smt.BitVecVal(0, 64)), _one(), _zero())
        raise UnsupportedProgramError(f"cannot evaluate {type(expr).__name__} symbolically")

    def _binop(
        self, op: str, left: Term, right: Term, state: PathState, crash_forks: List[PathState]
    ) -> Term:
        if op == BinaryOperator.ADD:
            return left + right
        if op == BinaryOperator.SUB:
            return left - right
        if op == BinaryOperator.MUL:
            return left * right
        if op in (BinaryOperator.UDIV, BinaryOperator.UREM):
            self._trap_check(
                state,
                crash_forks,
                smt.Eq(right, smt.BitVecVal(0, 64)),
                "division by zero" if op == BinaryOperator.UDIV else "remainder by zero",
            )
            return smt.UDiv(left, right) if op == BinaryOperator.UDIV else smt.URem(left, right)
        if op == BinaryOperator.AND:
            return left & right
        if op == BinaryOperator.OR:
            return left | right
        if op == BinaryOperator.XOR:
            return left ^ right
        if op == BinaryOperator.SHL:
            return left << right
        if op == BinaryOperator.LSHR:
            return smt.LShR(left, right)
        comparisons = {
            BinaryOperator.EQ: smt.Eq,
            BinaryOperator.NE: lambda a, b: smt.Not(smt.Eq(a, b)),
            BinaryOperator.ULT: smt.ULT,
            BinaryOperator.ULE: smt.ULE,
            BinaryOperator.UGT: smt.UGT,
            BinaryOperator.UGE: smt.UGE,
        }
        if op in comparisons:
            return smt.If(comparisons[op](left, right), _one(), _zero())
        raise UnsupportedProgramError(f"unknown binary operator {op!r}")

    # -- packet access ------------------------------------------------------------------------------

    def _bounds_check(
        self,
        state: PathState,
        crash_forks: List[PathState],
        offset: Term,
        nbytes: int,
        what: str,
    ) -> bool:
        """Fork a crash path if the access can be out of bounds.

        Returns False when the access is *always* out of bounds on this
        path (the state has then been terminated as a crash).
        """
        length = len(state.packet)
        out_of_bounds = smt.simplify(
            smt.UGT(offset + smt.BitVecVal(nbytes, 64), smt.BitVecVal(length, 64))
        )
        message = f"out-of-bounds {what} of {nbytes} bytes (packet length {length})"
        return self._trap_check(state, crash_forks, out_of_bounds, message)

    def _trap_check(
        self,
        state: PathState,
        crash_forks: List[PathState],
        trap_condition: Term,
        message: str,
    ) -> bool:
        """Handle a potential crash condition on the current path.

        Adds a crash fork when the trap is possible, constrains the main
        path to the safe case, and returns False when the trap is
        unavoidable (the main state is then terminated as the crash).
        """
        trap = smt.simplify(trap_condition)
        if trap.is_false():
            return True
        if trap.is_true() or not self._is_feasible(state, smt.Not(trap)):
            state.add_constraint(trap)
            state.terminate(SegmentOutcome.CRASH, crash_message=message)
            return False
        if self._is_feasible(state, trap):
            crash_state = state.fork()
            crash_state.add_constraint(trap)
            crash_state.terminate(SegmentOutcome.CRASH, crash_message=message)
            crash_forks.append(crash_state)
        state.add_constraint(smt.simplify(smt.Not(trap)))
        return True

    def _load(self, state: PathState, offset: Term, nbytes: int) -> Term:
        offset = smt.simplify(offset)
        concrete = self._concrete_value(offset)
        if concrete is not None:
            return state.packet.load(concrete, nbytes)
        parts = [
            state.packet.select(offset + smt.BitVecVal(index, 64), len(state.packet))
            for index in range(nbytes)
        ]
        value = smt.Concat(*parts) if len(parts) > 1 else parts[0]
        return smt.ZeroExt(64 - 8 * nbytes, value)

    def _store(self, state: PathState, offset: Term, nbytes: int, value: Term) -> None:
        offset = smt.simplify(offset)
        concrete = self._concrete_value(offset)
        if concrete is not None:
            state.packet.store(concrete, nbytes, value)
            return
        for index in range(nbytes):
            shift = 8 * (nbytes - 1 - index)
            byte_value = smt.Extract(shift + 7, shift, value)
            target = smt.simplify(offset + smt.BitVecVal(index, 64))
            for position in range(len(state.packet)):
                state.packet.set_byte(
                    position,
                    smt.If(
                        smt.Eq(target, smt.BitVecVal(position, 64)),
                        byte_value,
                        state.packet.byte(position),
                    ),
                )

    @staticmethod
    def _concrete_value(term: Term) -> Optional[int]:
        simplified = smt.simplify(term)
        if simplified.op == smt.Op.BV_CONST:
            return int(simplified.value)  # type: ignore[arg-type]
        return None

    # -- tables -------------------------------------------------------------------------------------

    def _table_read(self, table_name: str, key: Term, state: PathState) -> Tuple[Term, Term]:
        table = self._tables.get(table_name)
        declaration = self._program.tables.get(table_name)
        is_static = declaration is not None and declaration.kind == "static"
        use_concrete = (
            is_static
            and table is not None
            and hasattr(table, "symbolic_read")
            and self.options.static_table_mode == StaticTableMode.CONCRETE
        )
        if use_concrete:
            value, found_bool = table.symbolic_read(key, smt)  # type: ignore[union-attr]
            found = smt.If(found_bool, _one(), _zero())
            return smt.simplify(value), smt.simplify(found)

        # Havoc the read: the key/value-store model of the paper.  The value
        # is unconstrained; the found flag is an unconstrained 0/1.
        self._havoc_counter += 1
        value_name = f"{HAVOC_PREFIX}_{table_name}_{self._havoc_counter}_value"
        found_name = f"{HAVOC_PREFIX}_{table_name}_{self._havoc_counter}_found"
        value = smt.BitVec(value_name, 64)
        found = smt.BitVec(found_name, 64)
        state.add_constraint(smt.ULE(found, _one()))
        state.havoc_reads.append(
            HavocRead(table=table_name, key=smt.simplify(key), value_var=value_name, found_var=found_name)
        )
        return value, found

    # -- conditions and feasibility --------------------------------------------------------------------

    @staticmethod
    def _as_condition(term: Term) -> Term:
        """Convert a 64-bit 0/1 expression into a boolean condition."""
        simplified = smt.simplify(term)
        if simplified.op == smt.Op.BV_ITE:
            cond, then, other = simplified.args
            then_value = then.value if then.op == smt.Op.BV_CONST else None
            other_value = other.value if other.op == smt.Op.BV_CONST else None
            if then_value == 1 and other_value == 0:
                return cond
            if then_value == 0 and other_value == 1:
                return smt.simplify(smt.Not(cond))
        if simplified.op == smt.Op.BV_CONST:
            return smt.TRUE if int(simplified.value) != 0 else smt.FALSE  # type: ignore[arg-type]
        return smt.Not(smt.Eq(simplified, smt.BitVecVal(0, 64)))

    def _is_feasible(self, state: PathState, *extra: Term) -> bool:
        self.solver_checks += 1
        if not state.constraints and not extra:
            return True
        if self.checker is not None:
            # Incremental: the shared context re-derives the scope stack for
            # this path's constraint prefix (a fork only diverges in its
            # suffix) and decides the query as one assumption check.
            return self.checker.is_feasible(state.constraints, extra)
        constraints = list(state.constraints) + [smt.simplify(term) for term in extra]
        goal = smt.conjoin(constraints)
        return self.solver.check(goal) == smt.CheckResult.SAT


def _one() -> Term:
    return smt.BitVecVal(1, 64)


def _zero() -> Term:
    return smt.BitVecVal(0, 64)
