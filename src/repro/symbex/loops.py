"""Loop decomposition: verify one loop iteration as a "mini-element".

§3 "Element Verification": a loop with *t* iterations, explored naively,
multiplies the element's path count by (paths-per-iteration)^t.  The paper
instead symbolically executes a single iteration in isolation — a
mini-element whose inputs are the registers live at the loop head and the
packet — and composes the per-iteration results, the same move as pipeline
decomposition one level down.

This module implements that analysis for the bounded ``While`` loops of
the IR: it symbexes one iteration as a mini-element and reports

* the per-iteration segment count (vs. the multiplicative growth of naive
  unrolling),
* whether any single iteration can crash on its own, and
* a per-iteration instruction bound, giving the loop-wide bound
  ``max_iterations * per_iteration_bound``.

The iteration is *not* analysed in a vacuum: the program prefix leading to
the loop head executes first (so path facts the element established before
the loop — header-fits-in-packet checks, register definitions — hold), the
registers the loop itself mutates are havoc'd, and simple **stride
invariants** are inferred for constant-step counters (``r := r + c`` with a
constant initialiser ``r := c0`` implies ``(r - c0) mod c == 0``).  That
combination is what lets a checksum loop reading two bytes per step be
proved crash-free per-iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ir.exprs import BinaryOperator, BinOp, Const, Expr, Reg
from ..ir.program import ElementProgram
from ..ir.stmts import Assign, Emit, If, SetMeta, Stmt, TableRead, While, collect_statements
from .engine import SymbexOptions, SymbolicEngine
from .segment import ElementSummary


@dataclass
class LoopSummary:
    """Result of analysing one loop by decomposition into a mini-element."""

    loop_id: str
    max_iterations: int
    segments_per_iteration: int
    crash_segments_per_iteration: int
    max_instructions_per_iteration: int
    loop_instruction_bound: int
    iteration_summary: ElementSummary = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def decomposed_segment_count(self) -> int:
        """Segments examined with decomposition: one iteration, reused ``t`` times."""
        return self.segments_per_iteration * self.max_iterations

    def naive_segment_count(self) -> int:
        """Rough segment count of naive unrolling: per-iteration paths to the power t."""
        return max(1, self.segments_per_iteration) ** self.max_iterations

    def __repr__(self) -> str:
        return (
            f"LoopSummary({self.loop_id!r}, iterations<={self.max_iterations}, "
            f"{self.segments_per_iteration} segments/iteration, "
            f"bound={self.loop_instruction_bound} instructions)"
        )


#: Metadata key marking segments of an iteration program that reached the loop head.
ITERATION_MARKER = "__loop_iteration"


def _loop_carried_registers(loop: While) -> Set[str]:
    """Registers read by the loop condition or body (the mini-element's inputs)."""
    names: Set[str] = set()

    def visit_expr(expr: Expr) -> None:
        if isinstance(expr, Reg):
            names.add(expr.name)
        for child in expr.children():
            visit_expr(child)

    visit_expr(loop.cond)
    for stmt in collect_statements(loop.body):
        for attribute in ("expr", "cond", "offset", "value", "key"):
            candidate = getattr(stmt, attribute, None)
            if isinstance(candidate, Expr):
                visit_expr(candidate)
    return names


def _registers_assigned_in(stmts: Iterable[Stmt]) -> Set[str]:
    """Registers written by any of the given statements."""
    names: Set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, Assign):
            names.add(stmt.dst)
        elif isinstance(stmt, TableRead):
            names.add(stmt.dst_value)
            names.add(stmt.dst_found)
    return names


def _prefix_statements(parent: ElementProgram, loop: While) -> List[Stmt]:
    """All statements that appear before ``loop`` in pre-order."""
    prefix: List[Stmt] = []
    for stmt in collect_statements(parent.body):
        if stmt is loop:
            return prefix
        prefix.append(stmt)
    return prefix


def _dominating_statements(block: Sequence[Stmt], loop: While) -> Optional[List[Stmt]]:
    """Straight-line statements that execute on *every* path to the loop head.

    These are the statements before the loop in its own block and before
    each enclosing statement on the chain to it — excluding anything nested
    inside a branch, which only executes conditionally.  Returns None when
    ``loop`` is not in ``block``.
    """
    straight: List[Stmt] = []
    for stmt in block:
        if stmt is loop:
            return straight
        for child in stmt.children_blocks():
            nested = _dominating_statements(child, loop)
            if nested is not None:
                return straight + nested
        straight.append(stmt)
    return None


def _replace_loop(
    block: Sequence[Stmt], loop: While, replacement: Sequence[Stmt]
) -> Tuple[Tuple[Stmt, ...], bool]:
    """Return ``block`` with ``loop`` (matched by identity) replaced in place."""
    rebuilt: List[Stmt] = []
    found = False
    for stmt in block:
        if stmt is loop:
            rebuilt.extend(replacement)
            found = True
            continue
        if not found and isinstance(stmt, If):
            then, hit_then = _replace_loop(stmt.then, loop, replacement)
            orelse, hit_else = _replace_loop(stmt.orelse, loop, replacement)
            if hit_then or hit_else:
                stmt = If(stmt.cond, then, orelse)
                found = True
        elif not found and isinstance(stmt, While):
            inner, hit = _replace_loop(stmt.body, loop, replacement)
            if hit:
                stmt = While(stmt.cond, inner, stmt.max_iterations, stmt.loop_id)
                found = True
        rebuilt.append(stmt)
    return tuple(rebuilt), found


def _stride_invariant(
    loop: While,
    prefix: Sequence[Stmt],
    dominating: Sequence[Stmt],
    register: str,
) -> Optional[Expr]:
    """Infer ``(register - c0) mod stride == 0`` for constant-step counters.

    Applies when every in-loop assignment to ``register`` has the shape
    ``register := register + <const>`` and the initialiser is a constant
    assignment that **dominates** the loop head, with no conditional
    assignment to the register anywhere before the loop (an initialiser
    inside one branch of an If says nothing about the other branch).  The
    congruence then holds for every value the counter can take at the loop
    head (including under 64-bit wraparound), which is the fact that makes
    e.g. two-byte checksum strides provably in-bounds.
    """
    strides: List[int] = []
    for stmt in collect_statements(loop.body):
        if not isinstance(stmt, Assign) or stmt.dst != register:
            continue
        expr = stmt.expr
        if (
            isinstance(expr, BinOp)
            and expr.op == BinaryOperator.ADD
            and isinstance(expr.left, Reg)
            and expr.left.name == register
            and isinstance(expr.right, Const)
        ):
            strides.append(expr.right.value)
        else:
            return None
    stride = math.gcd(*strides) if strides else 0
    if stride <= 1:
        return None
    dominating_set = {id(stmt) for stmt in dominating}
    initial: Optional[int] = None
    for stmt in prefix:
        if isinstance(stmt, Assign) and stmt.dst == register:
            if id(stmt) not in dominating_set:
                return None  # conditional write: the loop-head value is path-dependent
            initial = stmt.expr.value if isinstance(stmt.expr, Const) else None
    if initial is None:
        return None
    offset_from_init = BinOp(BinaryOperator.SUB, Reg(register), Const(initial))
    return BinOp(
        BinaryOperator.EQ,
        BinOp(BinaryOperator.UREM, offset_from_init, Const(stride)),
        Const(0),
    )


def build_iteration_program(
    parent: ElementProgram, loop: While, name_suffix: str = "iteration"
) -> ElementProgram:
    """Extract one loop iteration as a mini-element program, in context.

    The parent program runs unchanged up to the loop head, so every path
    fact it establishes on the way (rejected malformed inputs, register
    definitions like a header length) still holds.  At the loop site, the
    registers the loop body mutates are re-initialised from havoc'd
    (symbolic, unconstrained) private-table reads — "this register may hold
    anything a previous iteration could have left in it" — restricted by
    any inferred stride invariant, the body runs once guarded by the loop
    condition, and the mini-element emits.  Statements after the loop are
    unreachable (the iteration terminates first).
    """
    carried = _loop_carried_registers(loop)
    assigned_in_body = _registers_assigned_in(collect_statements(loop.body))
    prefix = _prefix_statements(parent, loop)
    dominating = _dominating_statements(parent.body, loop) or []
    assigned_in_prefix = _registers_assigned_in(prefix)
    havoc_registers = sorted(
        (carried & assigned_in_body) | (carried - assigned_in_body - assigned_in_prefix)
    )

    table_name = "__loop_inputs"
    replacement: List[Stmt] = []
    for index, register in enumerate(havoc_registers):
        replacement.append(TableRead(table_name, index, register, f"__{register}_present"))
    iteration: List[Stmt] = [
        # Paths carrying this marker are genuine loop-head states (past any
        # invariant guard): summarize_loop uses it to separate iteration
        # segments from prefix segments.
        SetMeta(ITERATION_MARKER, Const(1)),
        If(loop.cond, list(loop.body), [Emit(0)]),
        Emit(0),
    ]
    invariants = [
        invariant
        for register in havoc_registers
        if (invariant := _stride_invariant(loop, prefix, dominating, register)) is not None
    ]
    if invariants:
        conjunction = invariants[0]
        for invariant in invariants[1:]:
            conjunction = BinOp(BinaryOperator.AND, conjunction, invariant)
        # An If, not an Assert: havoc values outside the invariant are
        # unreachable loop-head states, to be discarded rather than reported.
        replacement.append(If(conjunction, iteration, [Emit(0)]))
        replacement.append(Emit(0))
    else:
        replacement.extend(iteration)

    body, found = _replace_loop(parent.body, loop, replacement)
    if not found:
        raise ValueError(f"loop {loop.loop_id} is not part of program {parent.name}")
    tables = dict(parent.tables)
    from ..ir.program import TableDeclaration

    tables[table_name] = TableDeclaration(
        name=table_name, kind="private", description="havoc'd loop-carried registers"
    )
    return ElementProgram(
        name=f"{parent.name}.{loop.loop_id}.{name_suffix}",
        body=body,
        tables=tables,
        num_output_ports=max(parent.num_output_ports, 1),
        description=f"one iteration of loop {loop.loop_id} of {parent.name}",
    )


def _build_vacuum_iteration(parent: ElementProgram, loop: While) -> ElementProgram:
    """One iteration with *no* program prefix: havoc'd inputs, guard, body.

    Used only for the per-iteration instruction bound — unlike the
    in-context program, its instruction counts contain nothing but the
    iteration itself, so multiplying by ``max_iterations`` does not also
    multiply the cost of reaching the loop.
    """
    body: List[Stmt] = []
    table_name = "__loop_inputs"
    for index, register in enumerate(sorted(_loop_carried_registers(loop))):
        body.append(TableRead(table_name, index, register, f"__{register}_present"))
    body.append(If(loop.cond, list(loop.body), [Emit(0)]))
    body.append(Emit(0))
    tables = dict(parent.tables)
    from ..ir.program import TableDeclaration

    tables[table_name] = TableDeclaration(
        name=table_name, kind="private", description="havoc'd loop-carried registers"
    )
    return ElementProgram(
        name=f"{parent.name}.{loop.loop_id}.vacuum-iteration",
        body=tuple(body),
        tables=tables,
        num_output_ports=max(parent.num_output_ports, 1),
        description=f"one context-free iteration of loop {loop.loop_id} of {parent.name}",
    )


def summarize_loop(
    program: ElementProgram,
    loop: While,
    input_length: int,
    tables: Optional[Dict[str, object]] = None,
    options: Optional[SymbexOptions] = None,
) -> LoopSummary:
    """Analyse a loop by symbolically executing a single iteration.

    Segment and crash counts come from the in-context iteration program
    (prefix facts and stride invariants applied), restricted to segments
    that actually reached the loop head; prefix-only segments — rejects or
    crashes before the loop — are the enclosing element's business and are
    not attributed to the iteration.  The instruction bound comes from a
    context-free iteration so it scales with the body alone.
    """
    iteration_program = build_iteration_program(program, loop)
    engine = SymbolicEngine(options or SymbexOptions())
    summary = engine.summarize_element(
        iteration_program,
        input_length,
        tables=tables,
        element_name=iteration_program.name,
    )
    iteration_segments = [
        segment for segment in summary.segments if ITERATION_MARKER in segment.output_metadata
    ]
    crash_count = sum(1 for segment in iteration_segments if segment.crashes)

    vacuum_program = _build_vacuum_iteration(program, loop)
    vacuum_engine = SymbolicEngine(options or SymbexOptions())
    vacuum_summary = vacuum_engine.summarize_element(
        vacuum_program,
        input_length,
        tables=tables,
        element_name=vacuum_program.name,
    )
    per_iteration_max = vacuum_summary.max_instructions
    return LoopSummary(
        loop_id=loop.loop_id,
        max_iterations=loop.max_iterations,
        segments_per_iteration=len(iteration_segments),
        crash_segments_per_iteration=crash_count,
        max_instructions_per_iteration=per_iteration_max,
        loop_instruction_bound=per_iteration_max * loop.max_iterations,
        iteration_summary=summary,
    )


def summarize_program_loops(
    program: ElementProgram,
    input_length: int,
    tables: Optional[Dict[str, object]] = None,
    options: Optional[SymbexOptions] = None,
) -> List[LoopSummary]:
    """Summarise every loop in a program."""
    return [
        summarize_loop(program, loop, input_length, tables=tables, options=options)
        for loop in program.loops()
    ]
