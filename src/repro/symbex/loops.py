"""Loop decomposition: verify one loop iteration as a "mini-element".

§3 "Element Verification": a loop with *t* iterations, explored naively,
multiplies the element's path count by (paths-per-iteration)^t.  The paper
instead symbolically executes a single iteration in isolation — a
mini-element whose inputs are the registers live at the loop head and the
packet — and composes the per-iteration results, the same move as pipeline
decomposition one level down.

This module implements that analysis for the bounded ``While`` loops of
the IR: it extracts the loop body as a standalone program, symbexes one
iteration with havoc'd loop-carried registers, and reports

* the per-iteration segment count (vs. the multiplicative growth of naive
  unrolling),
* whether any single iteration can crash on its own, and
* a per-iteration instruction bound, giving the loop-wide bound
  ``max_iterations * per_iteration_bound``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from .. import smt
from ..ir.exprs import Expr, Reg
from ..ir.program import ElementProgram
from ..ir.stmts import Assign, Emit, If, Stmt, TableRead, While, collect_statements
from .engine import SymbexOptions, SymbolicEngine
from .segment import ElementSummary, SegmentOutcome
from .state import SymbolicPacket


@dataclass
class LoopSummary:
    """Result of analysing one loop by decomposition into a mini-element."""

    loop_id: str
    max_iterations: int
    segments_per_iteration: int
    crash_segments_per_iteration: int
    max_instructions_per_iteration: int
    loop_instruction_bound: int
    iteration_summary: ElementSummary = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def decomposed_segment_count(self) -> int:
        """Segments examined with decomposition: one iteration, reused ``t`` times."""
        return self.segments_per_iteration * self.max_iterations

    def naive_segment_count(self) -> int:
        """Rough segment count of naive unrolling: per-iteration paths to the power t."""
        return max(1, self.segments_per_iteration) ** self.max_iterations

    def __repr__(self) -> str:
        return (
            f"LoopSummary({self.loop_id!r}, iterations<={self.max_iterations}, "
            f"{self.segments_per_iteration} segments/iteration, "
            f"bound={self.loop_instruction_bound} instructions)"
        )


def _loop_carried_registers(loop: While) -> Set[str]:
    """Registers read by the loop condition or body (the mini-element's inputs)."""
    names: Set[str] = set()

    def visit_expr(expr: Expr) -> None:
        if isinstance(expr, Reg):
            names.add(expr.name)
        for child in expr.children():
            visit_expr(child)

    visit_expr(loop.cond)
    for stmt in collect_statements(loop.body):
        for attribute in ("expr", "cond", "offset", "value", "key"):
            candidate = getattr(stmt, attribute, None)
            if isinstance(candidate, Expr):
                visit_expr(candidate)
    return names


def build_iteration_program(
    parent: ElementProgram, loop: While, name_suffix: str = "iteration"
) -> ElementProgram:
    """Extract one loop iteration as a standalone mini-element program.

    The loop-carried registers become program inputs: each is initialised
    from a havoc'd (symbolic, unconstrained) private-table read, which is
    precisely "this register may hold anything a previous iteration could
    have left in it".  The body then runs once, guarded by the loop
    condition, and the mini-element emits.
    """
    body: List[Stmt] = []
    carried = sorted(_loop_carried_registers(loop))
    table_name = "__loop_inputs"
    for index, register in enumerate(carried):
        body.append(TableRead(table_name, index, register, f"__{register}_present"))
    body.append(If(loop.cond, list(loop.body), [Emit(0)]))
    body.append(Emit(0))
    tables = dict(parent.tables)
    from ..ir.program import TableDeclaration

    tables[table_name] = TableDeclaration(
        name=table_name, kind="private", description="havoc'd loop-carried registers"
    )
    return ElementProgram(
        name=f"{parent.name}.{loop.loop_id}.{name_suffix}",
        body=tuple(body),
        tables=tables,
        num_output_ports=max(parent.num_output_ports, 1),
        description=f"one iteration of loop {loop.loop_id} of {parent.name}",
    )


def summarize_loop(
    program: ElementProgram,
    loop: While,
    input_length: int,
    tables: Optional[Dict[str, object]] = None,
    options: Optional[SymbexOptions] = None,
) -> LoopSummary:
    """Analyse a loop by symbolically executing a single iteration."""
    iteration_program = build_iteration_program(program, loop)
    engine = SymbolicEngine(options or SymbexOptions())
    summary = engine.summarize_element(
        iteration_program,
        input_length,
        tables=tables,
        element_name=iteration_program.name,
    )
    crash_count = len(summary.crash_segments)
    per_iteration_max = summary.max_instructions
    return LoopSummary(
        loop_id=loop.loop_id,
        max_iterations=loop.max_iterations,
        segments_per_iteration=len(summary.segments),
        crash_segments_per_iteration=crash_count,
        max_instructions_per_iteration=per_iteration_max,
        loop_instruction_bound=per_iteration_max * loop.max_iterations,
        iteration_summary=summary,
    )


def summarize_program_loops(
    program: ElementProgram,
    input_length: int,
    tables: Optional[Dict[str, object]] = None,
    options: Optional[SymbexOptions] = None,
) -> List[LoopSummary]:
    """Summarise every loop in a program."""
    return [
        summarize_loop(program, loop, input_length, tables=tables, options=options)
        for loop in program.loops()
    ]
