"""Exception types for the symbolic execution engine."""

from __future__ import annotations


class SymbexError(Exception):
    """Base class for symbolic execution errors."""


class PathExplosionError(SymbexError):
    """Raised when path exploration exceeds its configured budget.

    This is the failure mode the paper attributes to whole-pipeline
    symbolic execution; the decomposed verifier catches it for the
    monolithic baseline and reports "did not complete within budget".
    """


class UnsupportedProgramError(SymbexError):
    """Raised when a program uses a construct the engine cannot analyse."""
