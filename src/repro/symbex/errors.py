"""Exception types for the symbolic execution engine."""

from __future__ import annotations


class SymbexError(Exception):
    """Base class for symbolic execution errors."""


class PathExplosionError(SymbexError):
    """Raised when path exploration exceeds its configured budget.

    This is the failure mode the paper attributes to whole-pipeline
    symbolic execution; the decomposed verifier catches it for the
    monolithic baseline and reports "did not complete within budget".

    ``element`` names the element whose program blew the budget (when
    known), so EXPLODED job results and ``trace summary`` can attribute
    the explosion instead of reporting a bare path count.
    """

    def __init__(self, message: str, element: str = "") -> None:
        super().__init__(message)
        self.element = element


class UnsupportedProgramError(SymbexError):
    """Raised when a program uses a construct the engine cannot analyse."""
