"""``repro.symbex`` — symbolic execution of element IR programs.

The engine enumerates all feasible paths of an element under a fully
symbolic input packet and produces :class:`SegmentSummary` records — the
path constraint and symbolic state transformation the verifier's Step 2
composes (see :mod:`repro.verify`).
"""

from .engine import StaticTableMode, SymbexOptions, SymbolicEngine
from .errors import PathExplosionError, SymbexError, UnsupportedProgramError
from .loops import LoopSummary, summarize_loop
from .segment import ElementSummary, SegmentOutcome, SegmentSummary, summarize_path
from .state import (
    HAVOC_PREFIX,
    INPUT_BYTE_PREFIX,
    INPUT_META_PREFIX,
    HavocRead,
    PathState,
    SymbolicPacket,
    TableWriteRecord,
)

__all__ = [
    "ElementSummary",
    "HAVOC_PREFIX",
    "HavocRead",
    "INPUT_BYTE_PREFIX",
    "INPUT_META_PREFIX",
    "LoopSummary",
    "PathExplosionError",
    "PathState",
    "SegmentOutcome",
    "SegmentSummary",
    "StaticTableMode",
    "SymbexError",
    "SymbexOptions",
    "SymbolicEngine",
    "SymbolicPacket",
    "TableWriteRecord",
    "UnsupportedProgramError",
    "summarize_loop",
    "summarize_path",
]
