"""Named metrics: counters, gauges, and histograms behind one registry.

The nine ``*Statistics`` dataclasses stay the source of truth for their
own layer; the registry is the *fleet-facing* aggregation point they
publish into (via :meth:`repro.obs.stats.StatisticsMixin.publish`), so a
service-mode exporter — or ``repro store stats`` — reads one namespace
(``solver.checks``, ``qcache.exact_hits``, ...) instead of walking nine
objects.  Thread-safe; cheap enough to update from hot paths, but the
expected pattern is publish-once at the end of a run.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "metrics"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count (resets only with the registry)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc by {amount})")
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value that can go up or down."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value

    def add(self, amount: Number) -> None:
        with self._lock:
            self.value += amount

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


#: Histogram bucket upper bounds, in seconds — tuned for solver latencies
#: (sub-millisecond quick checks through multi-second pathological solves).
DEFAULT_BUCKETS = (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0)


class Histogram:
    """A bucketed distribution (cumulative buckets, Prometheus-style)."""

    __slots__ = ("name", "buckets", "counts", "count", "total", "_lock")

    def __init__(self, name: str, buckets: tuple = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total: float = 0.0
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[index] += 1
                    return
            self.counts[-1] += 1

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "buckets": {
                **{str(bound): self.counts[i] for i, bound in enumerate(self.buckets)},
                "+inf": self.counts[-1],
            },
        }


class MetricsRegistry:
    """The process-wide metric namespace.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeated calls
    with the same name return the same instrument, and a name can only
    ever hold one instrument kind (mixing kinds raises).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory, kind) -> Union[Counter, Gauge, Histogram]:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str, buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, lambda n: Histogram(n, buckets), Histogram)

    def to_dict(self) -> dict:
        """Every instrument, name-sorted, as plain JSON-able dicts."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: instruments[name].to_dict() for name in sorted(instruments)}

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)


_registry: Optional[MetricsRegistry] = None
_registry_lock = threading.Lock()


def metrics() -> MetricsRegistry:
    """The process-wide registry (created on first use)."""
    global _registry
    if _registry is None:
        with _registry_lock:
            if _registry is None:
                _registry = MetricsRegistry()
    return _registry
