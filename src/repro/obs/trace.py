"""Span tracing: nestable, thread/fork-safe spans over a process-local ring buffer.

The tracer answers the operational question the end-to-end counters
cannot: *where does certification time go* — symbex vs. composition vs.
SAT core vs. stores — per element, per pipeline, per solve.  Call sites
wrap work in ``with trace.span("symbex.element", "symbex", element=name):``
and the closed span lands in a bounded ring buffer, exportable as JSONL
or as Chrome-trace JSON (loadable in ``chrome://tracing`` / Perfetto).

Design constraints, in order:

* **Zero overhead when disabled.**  The module-level :data:`NULL_TRACER`
  is installed by default; its ``span()`` returns one shared no-op
  context manager and its ``enabled`` flag lets hot paths skip argument
  assembly entirely (``if trace.enabled:``).
* **Thread safety.**  The buffer is guarded by a lock; the open-span
  stack (for parent ids) is per-thread.
* **Fork safety.**  A forked worker inherits the parent's tracer object
  *including its buffer*.  Every buffer operation checks ``os.getpid()``
  against the recording process: the first touch from a new pid clears
  the inherited spans, so a worker ships only the spans it recorded
  itself and a merged trace holds each span exactly once.  Span ids are
  ``(pid, sequence)`` pairs, unique across the whole worker tree.

Durations use :func:`clock` (``time.perf_counter``) — CLOCK_MONOTONIC on
Linux, which is shared across processes of one boot, so spans recorded
in fork workers land on the same timeline as the parent's.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

__all__ = [
    "NULL_TRACER",
    "Span",
    "Tracer",
    "active",
    "clock",
    "enable",
    "install",
    "load_trace",
    "summarize_spans",
    "tracer",
    "wall_clock",
]

#: The one monotonic duration clock every layer times against
#: (``time.perf_counter``).  Never use ``time.time()`` for durations —
#: wall clock steps under NTP; see :func:`wall_clock` for the one case
#: that genuinely wants wall time.
clock = time.perf_counter

#: Wall-clock time (``time.time``), for comparisons against *external*
#: wall-clock timestamps only — in practice file mtimes during store GC.
wall_clock = time.time

#: Default ring-buffer capacity: enough for a full-catalog certification
#: (tens of thousands of solve spans) without unbounded growth.
DEFAULT_CAPACITY = 262_144

_CHROME_HEADER = "traceEvents"


class Span:
    """One closed span (or instant event) on the trace timeline."""

    __slots__ = ("name", "category", "start", "end", "pid", "tid", "sid", "parent", "args")

    def __init__(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        pid: int,
        tid: int,
        sid: int,
        parent: Optional[int] = None,
        args: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.start = start
        self.end = end
        self.pid = pid
        self.tid = tid
        self.sid = sid
        self.parent = parent
        self.args = args or {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_event(self) -> bool:
        """Instant events carry a timestamp but no duration."""
        return self.end == self.start

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "cat": self.category,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "tid": self.tid,
            "sid": self.sid,
        }
        if self.parent is not None:
            payload["parent"] = self.parent
        if self.args:
            payload["args"] = dict(self.args)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            name=payload.get("name", ""),
            category=payload.get("cat", ""),
            start=float(payload.get("start", 0.0)),
            end=float(payload.get("end", 0.0)),
            pid=int(payload.get("pid", 0)),
            tid=int(payload.get("tid", 0)),
            sid=int(payload.get("sid", 0)),
            parent=payload.get("parent"),
            args=dict(payload.get("args", {})),
        )

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, cat={self.category!r}, "
            f"dur={self.duration * 1000:.3f}ms, pid={self.pid})"
        )


class _NullSpan:
    """The shared no-op span handle of the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    One module-level singleton (:data:`NULL_TRACER`) is shared by every
    call site, so a disabled run allocates nothing and hot paths can gate
    on the class-level ``enabled`` flag.
    """

    enabled = False

    def span(self, name: str, category: str = "", **args) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, category: str = "", **args) -> None:
        pass

    def record_span(
        self, name: str, category: str, start: float, end: float, **args
    ) -> None:
        pass

    def spans(self) -> List[Span]:
        return []

    def drain(self) -> List[dict]:
        return []

    def ingest(self, payloads: Iterable[dict]) -> int:
        return 0


NULL_TRACER = NullTracer()


class _SpanHandle:
    """An open span: context manager that records itself on exit."""

    __slots__ = ("_tracer", "name", "category", "args", "start", "sid", "parent")

    def __init__(self, owner: "Tracer", name: str, category: str, args: dict) -> None:
        self._tracer = owner
        self.name = name
        self.category = category
        self.args = args
        self.start = 0.0
        self.sid = 0
        self.parent: Optional[int] = None

    def set(self, **args) -> None:
        """Attach (or overwrite) span arguments while the span is open."""
        self.args.update(args)

    def __enter__(self) -> "_SpanHandle":
        self._tracer._open(self)
        self.start = clock()
        return self

    def __exit__(self, *exc) -> bool:
        end = clock()
        self._tracer._close(self, end)
        return False


class Tracer:
    """The enabled tracer: a bounded ring buffer of closed spans."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._pid = os.getpid()
        self._next_sid = 1

    # -- fork safety ---------------------------------------------------------------

    def _fork_check(self) -> None:
        """Drop spans inherited through ``fork()`` on first touch in a child.

        The parent keeps its buffer (its pid still matches); a worker
        starts from an empty buffer and ships back only its own spans.
        """
        if os.getpid() != self._pid:
            self._buffer = deque(maxlen=self.capacity)
            self._local = threading.local()
            self._pid = os.getpid()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- recording -----------------------------------------------------------------

    def span(self, name: str, category: str = "", **args) -> _SpanHandle:
        """Open a nestable span; close it by exiting the ``with`` block."""
        return _SpanHandle(self, name, category, args)

    def _open(self, handle: _SpanHandle) -> None:
        self._fork_check()
        with self._lock:
            handle.sid = self._next_sid
            self._next_sid += 1
        stack = self._stack()
        handle.parent = stack[-1].sid if stack else None
        stack.append(handle)

    def _close(self, handle: _SpanHandle, end: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is handle:
            stack.pop()
        elif handle in stack:  # pragma: no cover - mis-nested exit, still recorded
            stack.remove(handle)
        span = Span(
            name=handle.name,
            category=handle.category,
            start=handle.start,
            end=end,
            pid=self._pid,
            tid=threading.get_ident(),
            sid=handle.sid,
            parent=handle.parent,
            args=handle.args,
        )
        with self._lock:
            self._buffer.append(span)

    def event(self, name: str, category: str = "", **args) -> None:
        """Record an instant event (zero-duration span) at the current time."""
        now = clock()
        self.record_span(name, category, now, now, **args)

    def record_span(
        self, name: str, category: str, start: float, end: float, **args
    ) -> None:
        """Record an already-timed span (used by call sites that must not
        pay for a context manager on their hot path)."""
        self._fork_check()
        stack = self._stack()
        with self._lock:
            sid = self._next_sid
            self._next_sid += 1
            self._buffer.append(
                Span(
                    name=name,
                    category=category,
                    start=start,
                    end=end,
                    pid=self._pid,
                    tid=threading.get_ident(),
                    sid=sid,
                    parent=stack[-1].sid if stack else None,
                    args=args,
                )
            )

    # -- reading / shipping ----------------------------------------------------------

    def spans(self) -> List[Span]:
        """Snapshot of the recorded spans (oldest first)."""
        self._fork_check()
        with self._lock:
            return list(self._buffer)

    def drain(self) -> List[dict]:
        """Pop every recorded span as a JSON-able dict (worker shipping)."""
        self._fork_check()
        with self._lock:
            payloads = [span.to_dict() for span in self._buffer]
            self._buffer.clear()
        return payloads

    def ingest(self, payloads: Iterable[dict]) -> int:
        """Merge spans shipped from another process; returns the count added.

        Pids, tids, span ids and parent links are preserved — a worker's
        span tree stays intact under its own pid lane in the export.
        """
        self._fork_check()
        added = 0
        with self._lock:
            for payload in payloads:
                self._buffer.append(Span.from_dict(payload))
                added += 1
        return added

    def __len__(self) -> int:
        self._fork_check()
        return len(self._buffer)

    # -- export ----------------------------------------------------------------------

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write one span dict per line; returns the number written."""
        return write_jsonl(path, self.spans())

    def export_chrome(self, path: Union[str, Path]) -> int:
        """Write Chrome-trace JSON (``chrome://tracing`` / Perfetto)."""
        return write_chrome_trace(path, self.spans())

    def summary(self) -> dict:
        """Aggregate the buffer; see :func:`summarize_spans`."""
        return summarize_spans(self.spans())


# -- serialization ---------------------------------------------------------------------


def write_jsonl(path: Union[str, Path], spans: Iterable[Span]) -> int:
    count = 0
    with open(path, "w") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
            count += 1
    return count


def write_chrome_trace(path: Union[str, Path], spans: Iterable[Span]) -> int:
    """Write the Chrome trace-event format Perfetto and ``chrome://tracing`` load.

    Durations map to complete (``ph: "X"``) events, instant events to
    ``ph: "i"``.  Timestamps are microseconds relative to the earliest
    span, so the timeline starts at zero whatever ``perf_counter``'s
    epoch was.
    """
    spans = list(spans)
    origin = min((span.start for span in spans), default=0.0)
    events = []
    for span in spans:
        event = {
            "name": span.name,
            "cat": span.category or "default",
            "ts": (span.start - origin) * 1e6,
            "pid": span.pid,
            "tid": span.tid,
            "args": dict(span.args),
        }
        if span.is_event:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = span.duration * 1e6
        events.append(event)
    document = {_CHROME_HEADER: events, "displayTimeUnit": "ms"}
    Path(path).write_text(json.dumps(document) + "\n")
    return len(events)


def load_trace(path: Union[str, Path]) -> List[Span]:
    """Load spans from either export format (autodetected).

    JSONL (one object per line) and Chrome-trace JSON (an object with a
    ``traceEvents`` list, or a bare event list) both round-trip; Chrome
    events convert back through their ``ts``/``dur`` microseconds.
    """
    text = Path(path).read_text()
    stripped = text.lstrip()
    if not stripped:
        return []
    if stripped.startswith("{") or stripped.startswith("["):
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            document = None
        if isinstance(document, dict) and _CHROME_HEADER in document:
            return [_span_from_chrome(event) for event in document[_CHROME_HEADER]]
        if isinstance(document, list):
            return [_span_from_chrome(event) for event in document]
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def _span_from_chrome(event: dict) -> Span:
    start = float(event.get("ts", 0.0)) / 1e6
    duration = float(event.get("dur", 0.0)) / 1e6 if event.get("ph") == "X" else 0.0
    return Span(
        name=event.get("name", ""),
        category=event.get("cat", ""),
        start=start,
        end=start + duration,
        pid=int(event.get("pid", 0)),
        tid=int(event.get("tid", 0)),
        sid=int(event.get("sid", 0)),
        args=dict(event.get("args", {})),
    )


def summarize_spans(spans: Iterable[Span]) -> dict:
    """Aggregate spans into the per-phase / per-pipeline breakdown.

    ``phases`` totals span durations by category — categories *nest*
    (a ``symbex`` span contains ``sat`` spans), so phase totals overlap
    by design: each answers "how much wall time was inside this layer".
    ``pipelines`` and ``elements`` key on the ``pipeline``/``element``
    span arguments the fleet and symbex layers attach.
    """
    phases: Dict[str, Dict[str, float]] = {}
    pipelines: Dict[str, float] = {}
    elements: Dict[str, float] = {}
    span_count = 0
    event_count = 0
    earliest: Optional[float] = None
    latest: Optional[float] = None
    for span in spans:
        if span.is_event:
            event_count += 1
        else:
            span_count += 1
        earliest = span.start if earliest is None else min(earliest, span.start)
        latest = span.end if latest is None else max(latest, span.end)
        phase = phases.setdefault(
            span.category or "default", {"count": 0, "seconds": 0.0}
        )
        phase["count"] += 1
        phase["seconds"] += span.duration
        pipeline = span.args.get("pipeline")
        if pipeline is not None and not span.is_event:
            pipelines[pipeline] = pipelines.get(pipeline, 0.0) + span.duration
        element = span.args.get("element")
        if element is not None and not span.is_event:
            elements[element] = elements.get(element, 0.0) + span.duration
    return {
        "spans": span_count,
        "events": event_count,
        "wall_seconds": (latest - earliest) if earliest is not None else 0.0,
        "phases": {name: phases[name] for name in sorted(phases)},
        "pipelines": {name: pipelines[name] for name in sorted(pipelines)},
        "elements": {name: elements[name] for name in sorted(elements)},
    }


# -- the process-wide active tracer ----------------------------------------------------

_active: Union[Tracer, NullTracer] = NULL_TRACER


def tracer() -> Union[Tracer, NullTracer]:
    """The active tracer (the no-op singleton unless one was installed)."""
    return _active


def install(new_tracer: Optional[Union[Tracer, NullTracer]]) -> Union[Tracer, NullTracer]:
    """Install ``new_tracer`` (``None`` disables); returns the previous one."""
    global _active
    previous = _active
    _active = new_tracer if new_tracer is not None else NULL_TRACER
    return previous


def enable(capacity: int = DEFAULT_CAPACITY) -> Tracer:
    """Install a fresh :class:`Tracer` if tracing is off; return the active one."""
    global _active
    if not isinstance(_active, Tracer):
        _active = Tracer(capacity=capacity)
    return _active


class active:
    """Scoped install: ``with obs.active(tracer): ...`` restores on exit."""

    def __init__(self, new_tracer: Optional[Union[Tracer, NullTracer]]) -> None:
        self._tracer = new_tracer
        self._previous: Optional[Union[Tracer, NullTracer]] = None

    def __enter__(self) -> Union[Tracer, NullTracer]:
        self._previous = install(self._tracer)
        return _active

    def __exit__(self, *exc) -> bool:
        install(self._previous)
        return False
