"""The slow-solve log: every SAT-core call over a threshold, with context.

Set ``REPRO_SLOW_SOLVE_MS`` to a millisecond threshold and every
:meth:`SatBackend.solve` call that exceeds it is recorded with the
work it did (conflict/decision/restart deltas), the backend that did it,
and — when the query-cache layer is on — the structural fingerprint of
the slice being solved, so a pathological query can be replayed against
``repro store`` tooling.

Fingerprints are expensive (a SHA-256 walk over the slice's term DAG),
so they are never computed up front: the layer that *has* the terms in
scope (``SolverContext._solve_slice`` / the query cache) parks a
zero-argument provider in a thread-local slot, and the log calls it only
when a solve actually crossed the threshold.

The :func:`sat_observer` accessor is the single gate the SAT cores pay
when idle: it returns ``None`` unless tracing is enabled or a threshold
is set, so the disabled cost is one function call and one comparison per
solve.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, List, Optional

from . import trace as _trace

__all__ = [
    "SlowSolveLog",
    "sat_observer",
    "slow_solve_log",
    "slice_context",
    "set_slow_threshold_ms",
]

_ENV_THRESHOLD = "REPRO_SLOW_SOLVE_MS"

#: Bound on retained slow records; a run that tripped the threshold this
#: many times has a systemic problem the first thousand records show.
MAX_RECORDS = 1024


class SlowSolveLog:
    """Bounded, thread-safe list of slow-solve records."""

    def __init__(self) -> None:
        self.records: List[dict] = []
        self._lock = threading.Lock()
        self._pid = os.getpid()

    def _fork_check(self) -> None:
        if os.getpid() != self._pid:
            self.records = []
            self._pid = os.getpid()

    def add(self, record: dict) -> None:
        self._fork_check()
        with self._lock:
            if len(self.records) < MAX_RECORDS:
                self.records.append(record)

    def drain(self) -> List[dict]:
        self._fork_check()
        with self._lock:
            records = self.records
            self.records = []
        return records

    def __len__(self) -> int:
        self._fork_check()
        return len(self.records)


_log = SlowSolveLog()
_override_ms: Optional[float] = None
_slice_local = threading.local()


def slow_solve_log() -> SlowSolveLog:
    return _log


def set_slow_threshold_ms(threshold: Optional[float]) -> None:
    """Programmatic threshold override (``None`` restores the env lookup)."""
    global _override_ms
    _override_ms = threshold


def _threshold_ms() -> Optional[float]:
    if _override_ms is not None:
        return _override_ms
    raw = os.environ.get(_ENV_THRESHOLD)
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


class slice_context:
    """Scoped slice-fingerprint provider for the slow log.

    The provider is a zero-argument callable returning the slice
    fingerprint (or ``None``); it runs only if a solve inside the scope
    crosses the slow threshold, so the fingerprint's cost is paid exactly
    when a record is written.
    """

    __slots__ = ("_provider", "_previous")

    def __init__(self, provider: Optional[Callable[[], Optional[str]]]) -> None:
        self._provider = provider
        self._previous: Optional[Callable[[], Optional[str]]] = None

    def __enter__(self) -> "slice_context":
        self._previous = getattr(_slice_local, "provider", None)
        _slice_local.provider = self._provider
        return self

    def __exit__(self, *exc) -> bool:
        _slice_local.provider = self._previous
        return False


def _current_fingerprint() -> Optional[str]:
    provider = getattr(_slice_local, "provider", None)
    if provider is None:
        return None
    try:
        return provider()
    except Exception:  # pragma: no cover - a broken provider must not kill a solve
        return None


class _SatObserver:
    """Times one ``solve()`` call; emits a span and/or a slow record."""

    __slots__ = ("_backend", "_threshold", "_tracer", "start")

    def __init__(self, backend: str, threshold: Optional[float], tracer) -> None:
        self._backend = backend
        self._threshold = threshold
        self._tracer = tracer
        self.start = _trace.clock()

    def finish(
        self,
        result: str,
        conflicts: int,
        decisions: int,
        restarts: int,
        assumptions: int = 0,
    ) -> None:
        end = _trace.clock()
        elapsed_ms = (end - self.start) * 1000.0
        if self._tracer is not None:
            self._tracer.record_span(
                "sat.solve",
                "sat",
                self.start,
                end,
                backend=self._backend,
                result=result,
                conflicts=conflicts,
                decisions=decisions,
            )
        if self._threshold is not None and elapsed_ms >= self._threshold:
            _log.add(
                {
                    "elapsed_ms": elapsed_ms,
                    "backend": self._backend,
                    "result": result,
                    "conflicts": conflicts,
                    "decisions": decisions,
                    "restarts": restarts,
                    "assumptions": assumptions,
                    "slice_fingerprint": _current_fingerprint(),
                }
            )


def sat_observer(backend: str) -> Optional[_SatObserver]:
    """The per-solve observer, or ``None`` when nothing is watching.

    This is the hot-path gate: with tracing off and no slow threshold it
    costs one call, one attribute read, and one env-cache check.
    """
    tracer = _trace.tracer()
    active_tracer = tracer if tracer.enabled else None
    threshold = _threshold_ms()
    if active_tracer is None and threshold is None:
        return None
    return _SatObserver(backend, threshold, active_tracer)
