"""Unified observability: span tracing, metrics, statistics, slow-solve log.

The certification stack answers *what* it proved via verdicts and *how
much* work it did via per-layer statistics; this package answers *where
the time went*.  One import point::

    from repro import obs

    tracer = obs.enable()                      # turn tracing on
    with obs.tracer().span("verify.property", "verify", pipeline=name):
        ...
    tracer.export_chrome("trace.json")         # chrome://tracing / Perfetto
    print(obs.summarize_spans(tracer.spans())) # per-phase breakdown

Span taxonomy (category → span names):

==========  =====================================================
category    spans / events
==========  =====================================================
fleet       ``fleet.certify``, ``fleet.summarize``, ``fleet.pipeline``
scheduler   ``scheduler.task`` (one per dispatched summary/verify task)
verify      ``verify.property``, ``verify.instruction_bound``
symbex      ``symbex.element``
sat         ``sat.solve``
qcache      ``qcache.hit`` / ``qcache.miss`` events (``tier`` arg)
cache       ``cache.hit`` / ``cache.miss`` events (``tier`` arg)
==========  =====================================================

The fleet scheduler additionally publishes ``scheduler.queue_depth``
and ``scheduler.worker_idle_ms`` gauges via :data:`metrics`.

Timing discipline: durations use :func:`clock` (monotonic,
``time.perf_counter``); :func:`wall_clock` exists solely for comparisons
against external wall-clock timestamps (file mtimes in store GC).
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, metrics
from .slowlog import (
    sat_observer,
    set_slow_threshold_ms,
    slice_context,
    slow_solve_log,
)
from .stats import StatisticsMixin
from .trace import (
    NULL_TRACER,
    Span,
    Tracer,
    active,
    clock,
    enable,
    install,
    load_trace,
    summarize_spans,
    tracer,
    wall_clock,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "Span",
    "StatisticsMixin",
    "Tracer",
    "active",
    "clock",
    "enable",
    "install",
    "load_trace",
    "metrics",
    "sat_observer",
    "set_slow_threshold_ms",
    "slice_context",
    "slow_solve_log",
    "summarize_spans",
    "tracer",
    "wall_clock",
]
