"""One statistics protocol instead of nine hand-rolled variants.

Every ``*Statistics`` dataclass in the repo (solver, context, query
cache, summary cache, store, verification, fleet, driver, monolithic)
mixes this in and gets, generically over :func:`dataclasses.fields`:

* ``to_dict()`` / ``from_dict()`` — plain-JSON round-trip with exactly
  the dataclass's field names as keys (the key sets the verdict store
  already persists are unchanged, because the old hand-rolled dicts
  enumerated exactly the fields too);
* ``as_dict()`` — alias kept for the solver-layer callers that predate
  the unification;
* ``merge(other)`` — numeric fields sum, bools OR, dict fields key-sum,
  except fields named in the ``MERGE_MAX`` class var which take the max
  (high-water marks like a driver's ``max_instructions``);
* ``publish(prefix)`` — push every scalar field into the process-wide
  :func:`repro.obs.metrics.metrics` registry as ``<prefix>.<field>``
  gauges.

Field-type dispatch checks ``bool`` before ``int``/``float`` because
``bool`` subclasses ``int`` — merging two ``budget_exceeded`` flags must
OR, not sum.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar, Tuple, TypeVar

from .metrics import MetricsRegistry, metrics

__all__ = ["StatisticsMixin"]

S = TypeVar("S", bound="StatisticsMixin")


class StatisticsMixin:
    """Shared ``to_dict``/``from_dict``/``merge``/``publish`` for stats dataclasses."""

    #: Field names merged by ``max`` instead of ``+`` (high-water marks).
    MERGE_MAX: ClassVar[Tuple[str, ...]] = ()

    def to_dict(self) -> dict:
        payload = {}
        for spec in dataclasses.fields(self):  # type: ignore[arg-type]
            value = getattr(self, spec.name)
            if isinstance(value, dict):
                value = dict(value)
            elif isinstance(value, (list, tuple)):
                value = list(value)
            payload[spec.name] = value
        return payload

    def as_dict(self) -> dict:
        """Alias for :meth:`to_dict` (pre-unification spelling)."""
        return self.to_dict()

    @classmethod
    def from_dict(cls, payload: dict):
        statistics = cls()
        for spec in dataclasses.fields(cls):  # type: ignore[arg-type]
            if spec.name not in payload:
                continue
            value = payload[spec.name]
            if isinstance(getattr(statistics, spec.name), dict) and value is not None:
                value = dict(value)
            setattr(statistics, spec.name, value)
        return statistics

    def merge(self: S, other: S) -> S:
        """Fold ``other`` into ``self`` (sum/OR/key-sum; ``MERGE_MAX`` maxes)."""
        for spec in dataclasses.fields(self):  # type: ignore[arg-type]
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(mine, bool) or isinstance(theirs, bool):
                setattr(self, spec.name, bool(mine) or bool(theirs))
            elif spec.name in self.MERGE_MAX:
                setattr(self, spec.name, max(mine, theirs))
            elif isinstance(mine, (int, float)):
                setattr(self, spec.name, mine + theirs)
            elif isinstance(mine, dict):
                for key, value in theirs.items():
                    if isinstance(value, bool):
                        mine[key] = bool(mine.get(key, False)) or value
                    elif isinstance(value, (int, float)):
                        mine[key] = mine.get(key, 0) + value
                    else:  # pragma: no cover - non-numeric dict values don't merge
                        mine[key] = value
            # Non-numeric scalars (strings, None) keep self's value.
        return self

    def publish(self, prefix: str, registry: MetricsRegistry = None) -> None:  # type: ignore[assignment]
        """Publish every scalar field as a ``<prefix>.<field>`` gauge."""
        target = registry if registry is not None else metrics()
        for spec in dataclasses.fields(self):  # type: ignore[arg-type]
            value = getattr(self, spec.name)
            if isinstance(value, bool):
                target.gauge(f"{prefix}.{spec.name}").set(int(value))
            elif isinstance(value, (int, float)):
                target.gauge(f"{prefix}.{spec.name}").set(value)
